"""The resilience layer: budgets, taxonomy, crash-safe cache, injection.

Covers the guarantees of ``repro.bench.resilience`` end to end:

* per-cell policies — wall-clock deadlines (watchdog + cooperative
  checks), RSS budgets, bounded retry-with-backoff;
* the failure taxonomy degrading cells to "-" instead of aborting runs;
* atomic cache writes, corruption quarantine + prefix salvage, tolerant
  schema loading, and batched saves;
* the deterministic fault injector (raise / delay / allocate / crash).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.bench import resilience
from repro.bench.harness import (
    CACHE_SCHEMA_VERSION,
    CellResult,
    ExperimentMatrix,
    SettingKey,
)
from repro.bench.resilience import (
    CellDeadlineExceeded,
    CellStatus,
    Deadline,
    ExecutionPolicy,
    FaultInjector,
    FaultPlan,
    MemoryBudgetExceeded,
    TransientError,
    atomic_write_json,
    run_guarded,
    salvage_json_prefix,
)
from repro.core import stages
from repro.core.stages import StageTrace
from repro.tuning.result import TunedResult


HAVE_SIGALRM = hasattr(signal, "SIGALRM")


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    """Every test must leave the global stage-hook registry clean."""
    before = list(stages._STAGE_HOOKS)
    yield
    assert stages._STAGE_HOOKS == before, "test leaked a stage hook"


def fake_tuned(method="kNNJ"):
    return TunedResult(
        method=method, params={"k": 2}, pc=0.95, pq=0.5,
        candidates=10, runtime=0.01, feasible=True, configurations_tried=1,
    )


def make_matrix(tmp_path, monkeypatch=None, compute=None, **kwargs):
    """A tiny matrix; with ``compute`` set, tuning is stubbed out."""
    kwargs.setdefault("methods", ["kNNJ"])
    kwargs.setdefault("datasets", ["d1"])
    kwargs.setdefault("cache_path", tmp_path / "matrix.json")
    kwargs.setdefault("injector", FaultInjector([]))
    matrix = ExperimentMatrix(**kwargs)
    if compute is not None:
        assert monkeypatch is not None
        monkeypatch.setattr(
            ExperimentMatrix,
            "_compute",
            lambda self, key: compute(key),
        )
    return matrix


# ----------------------------------------------------------------------
# run_guarded: retry, classification, strictness.
# ----------------------------------------------------------------------


class TestRunGuarded:
    def test_success_passes_value_through(self):
        outcome = run_guarded(lambda: 42, ExecutionPolicy())
        assert outcome.ok
        assert outcome.value == 42
        assert outcome.status == CellStatus.OK
        assert outcome.attempts == 1

    def test_transient_error_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("hiccup")
            return "done"

        policy = ExecutionPolicy(max_retries=2, backoff=0.01)
        sleeps = []
        outcome = run_guarded(flaky, policy, sleep=sleeps.append)
        assert outcome.ok
        assert outcome.value == "done"
        assert outcome.attempts == 3
        # Exponential backoff: base, then doubled.
        assert sleeps == [0.01, 0.02]

    def test_retries_are_bounded_then_error(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientError("persistent")

        policy = ExecutionPolicy(max_retries=2, backoff=0.0)
        outcome = run_guarded(always_fails, policy, sleep=lambda s: None)
        assert not outcome.ok
        assert outcome.status == CellStatus.ERROR
        assert outcome.attempts == 3  # initial + exactly max_retries
        assert len(calls) == 3
        assert "persistent" in outcome.error

    def test_zero_retries_fails_immediately(self):
        policy = ExecutionPolicy(max_retries=0)
        outcome = run_guarded(
            lambda: (_ for _ in ()).throw(TransientError("x")),
            policy,
            sleep=lambda s: None,
        )
        assert outcome.status == CellStatus.ERROR
        assert outcome.attempts == 1

    def test_nontransient_error_never_retries(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug")

        outcome = run_guarded(broken, ExecutionPolicy(max_retries=5))
        assert outcome.status == CellStatus.ERROR
        assert len(calls) == 1
        assert outcome.error == "ValueError: bug"

    def test_memory_error_is_oom(self):
        def hog():
            raise MemoryError("boom")

        outcome = run_guarded(hog, ExecutionPolicy())
        assert outcome.status == CellStatus.OOM

    def test_custom_transient_types(self):
        policy = ExecutionPolicy(
            max_retries=1, backoff=0.0, transient_errors=(ConnectionError,)
        )
        calls = []

        def flaky():
            calls.append(1)
            raise ConnectionError("net")

        outcome = run_guarded(flaky, policy, sleep=lambda s: None)
        assert outcome.status == CellStatus.ERROR
        assert len(calls) == 2

    def test_strict_reraises(self):
        policy = ExecutionPolicy(strict=True)
        with pytest.raises(ValueError):
            run_guarded(
                lambda: (_ for _ in ()).throw(ValueError("bug")), policy
            )

    def test_strict_reraises_after_bounded_retries(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientError("persistent")

        policy = ExecutionPolicy(max_retries=1, backoff=0.0, strict=True)
        with pytest.raises(TransientError):
            run_guarded(always_fails, policy, sleep=lambda s: None)
        assert len(calls) == 2

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_guarded(interrupted, ExecutionPolicy())

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(timeout=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(backoff=-0.1)


# ----------------------------------------------------------------------
# Deadlines: cooperative checks and the SIGALRM watchdog.
# ----------------------------------------------------------------------


class TestDeadline:
    def test_check_raises_after_expiry(self):
        deadline = Deadline(0.0001)
        time.sleep(0.01)
        assert deadline.expired
        with pytest.raises(CellDeadlineExceeded):
            deadline.check()

    def test_cooperative_timeout_at_stage_boundary(self):
        """A loop entering stages is cut off without any signal."""

        def looping():
            trace = StageTrace()
            for _ in range(10_000):
                with trace.stage("query"):
                    time.sleep(0.005)

        policy = ExecutionPolicy(timeout=0.05)
        start = time.monotonic()
        outcome = run_guarded(looping, policy)
        elapsed = time.monotonic() - start
        assert outcome.status == CellStatus.TIMEOUT
        assert elapsed < 5.0

    @pytest.mark.skipif(not HAVE_SIGALRM, reason="needs POSIX signals")
    def test_watchdog_interrupts_noncooperative_hang(self):
        policy = ExecutionPolicy(timeout=0.1)
        start = time.monotonic()
        outcome = run_guarded(lambda: time.sleep(30), policy)
        elapsed = time.monotonic() - start
        assert outcome.status == CellStatus.TIMEOUT
        assert elapsed < 5.0

    @pytest.mark.skipif(not HAVE_SIGALRM, reason="needs POSIX signals")
    def test_watchdog_restores_previous_handler(self):
        previous = signal.getsignal(signal.SIGALRM)
        run_guarded(lambda: None, ExecutionPolicy(timeout=5.0))
        assert signal.getsignal(signal.SIGALRM) is previous

    def test_run_guarded_times_out_from_worker_thread(self):
        """Satellite regression: guards must work off the main thread.

        SIGALRM handlers can only be installed from the main thread; a
        serving/reader thread running a guarded cell must degrade to
        cooperative stage-boundary checks instead of crashing with
        ``ValueError: signal only works in main thread``.
        """

        def looping():
            trace = StageTrace()
            for _ in range(10_000):
                with trace.stage("query"):
                    time.sleep(0.005)

        outcomes = []

        def worker():
            outcomes.append(run_guarded(looping, ExecutionPolicy(timeout=0.05)))

        thread = threading.Thread(target=worker)
        start = time.monotonic()
        thread.start()
        thread.join(timeout=30.0)
        elapsed = time.monotonic() - start
        assert not thread.is_alive()
        assert len(outcomes) == 1
        # The cooperative fallback cut the loop off; no signal error.
        assert outcomes[0].status == CellStatus.TIMEOUT
        assert "signal" not in outcomes[0].error.lower()
        assert elapsed < 5.0

    def test_alarm_watchdog_noop_off_main_thread(self):
        """The watchdog context itself must be inert in worker threads."""
        errors = []

        def worker():
            try:
                with resilience._alarm_watchdog(Deadline(0.01)):
                    time.sleep(0.05)  # longer than the deadline
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10.0)
        # No SIGALRM fired, no ValueError from signal.signal: the sleep
        # ran to completion and cooperative checks are the caller's job.
        assert errors == []

    def test_deadline_spans_retries(self):
        """Backoff pauses draw from the same cell budget."""
        policy = ExecutionPolicy(timeout=0.2, max_retries=50, backoff=0.5)
        outcome = run_guarded(
            lambda: (_ for _ in ()).throw(TransientError("x")),
            policy,
            sleep=time.sleep,
        )
        # The first backoff (0.5s) already exceeds the 0.2s budget.
        assert outcome.status == CellStatus.TIMEOUT
        assert outcome.attempts == 1


class TestMemoryBudget:
    def test_budget_breach_detected_at_boundary(self, monkeypatch):
        monkeypatch.setattr(resilience, "current_rss_mb", lambda: 4096.0)

        def works():
            trace = StageTrace()
            with trace.stage("index"):
                pass

        policy = ExecutionPolicy(memory_budget_mb=1024.0)
        outcome = run_guarded(works, policy)
        assert outcome.status == CellStatus.OOM
        assert "4096" in outcome.error

    def test_generous_budget_passes(self):
        policy = ExecutionPolicy(memory_budget_mb=1 << 20)
        outcome = run_guarded(lambda: "fine", policy)
        assert outcome.ok

    def test_current_rss_is_positive_here(self):
        assert resilience.current_rss_mb() > 0


# ----------------------------------------------------------------------
# Atomic writes and corruption recovery.
# ----------------------------------------------------------------------


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "deep" / "cache.json"
        atomic_write_json(target, {"a": 1})
        assert json.loads(target.read_text()) == {"a": 1}

    def test_overwrite_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "cache.json"
        for i in range(3):
            atomic_write_json(target, {"i": i})
        assert json.loads(target.read_text()) == {"i": 2}
        assert os.listdir(tmp_path) == ["cache.json"]

    def test_failed_write_keeps_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "cache.json"
        atomic_write_json(target, {"old": True})

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(resilience.os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_json(target, {"new": True})
        monkeypatch.undo()
        # Old content intact, temp file cleaned up.
        assert json.loads(target.read_text()) == {"old": True}
        assert os.listdir(tmp_path) == ["cache.json"]


class TestSalvage:
    FULL = {
        "a|d1|a": {"method": "a", "pc": 0.9},
        "b|d1|a": {"method": "b", "params": {"k": [1, 2]}},
        "c|d1|a": {"method": "c", "note": "x,}{\"y\""},
    }

    def test_complete_document_fully_recovered(self):
        text = json.dumps(self.FULL, indent=1)
        assert salvage_json_prefix(text) == self.FULL

    def test_every_truncation_yields_a_prefix(self):
        """For any cut point: no crash, and a subset of the real entries."""
        text = json.dumps(self.FULL, indent=1)
        seen_counts = set()
        for cut in range(len(text)):
            recovered = salvage_json_prefix(text[:cut], depth=0)
            for key, value in recovered.items():
                assert self.FULL[key] == value
            seen_counts.add(len(recovered))
        assert seen_counts == {0, 1, 2, 3}

    def test_truncated_wrapper_salvages_nested_cells(self):
        """The versioned wrapper's chopped "cells" value is recovered."""
        text = json.dumps({"schema": 2, "cells": self.FULL}, indent=1)
        # Cut inside the third cell: the two finished cells survive, the
        # half-written one is dropped whole (depth stops at the cells).
        cut = text.index('"c|d1|a"') + 20
        recovered = salvage_json_prefix(text[:cut])
        assert recovered["schema"] == 2
        assert recovered["cells"] == {
            "a|d1|a": self.FULL["a|d1|a"],
            "b|d1|a": self.FULL["b|d1|a"],
        }

    def test_garbage_yields_empty(self):
        assert salvage_json_prefix("not json at all") == {}
        assert salvage_json_prefix("") == {}
        assert salvage_json_prefix("[1, 2, 3]") == {}

    def test_quarantine_moves_file(self, tmp_path):
        bad = tmp_path / "matrix.json"
        bad.write_text("{corrupt")
        moved = resilience.quarantine(bad)
        assert not bad.exists()
        assert moved is not None and moved.read_text() == "{corrupt"


class TestCacheRecovery:
    def _cells(self, n):
        return {
            f"m{i}|d1|a": {
                "method": f"m{i}", "dataset": "d1", "setting": "a",
                "pc": 0.9, "pq": 0.5, "candidates": 7, "runtime": 0.1,
                "feasible": True, "params": {}, "configurations_tried": 3,
                "status": "ok", "error": "", "attempts": 1,
            }
            for i in range(n)
        }

    def test_truncated_cache_recovers_completed_cells(self, tmp_path):
        """kill -9 between writes: next load keeps every finished cell."""
        path = tmp_path / "matrix.json"
        payload = {"schema": CACHE_SCHEMA_VERSION, "cells": self._cells(6)}
        atomic_write_json(path, payload)
        text = path.read_text()
        # Chop mid-way through the last cell: simulates the torn write
        # the old non-atomic saver could produce.
        path.write_text(text[: int(len(text) * 0.9)])

        matrix = make_matrix(tmp_path)
        # At least the cells before the torn tail survive.
        assert len(matrix._results) >= 5
        for key, cell in matrix._results.items():
            assert cell.ok
            assert cell.pc == 0.9
        # The corrupt original is quarantined and the cache re-stamped.
        assert (tmp_path / "matrix.json.corrupt").exists()
        restamped = json.loads(path.read_text())
        assert restamped["schema"] == CACHE_SCHEMA_VERSION
        assert len(restamped["cells"]) == len(matrix._results)

    def test_legacy_flat_schema_loads_and_restamps(self, tmp_path):
        path = tmp_path / "matrix.json"
        legacy = {
            "kNNJ|d1|a": {
                "method": "kNNJ", "dataset": "d1", "setting": "a",
                "pc": 0.95, "pq": 0.5, "candidates": 10, "runtime": 0.2,
                "feasible": True, "params": {"k": 2},
                "configurations_tried": 4,
            }
        }
        path.write_text(json.dumps(legacy))
        matrix = make_matrix(tmp_path)
        cell = matrix.get("kNNJ", "d1", "a")
        assert cell is not None and cell.pc == 0.95
        assert cell.status == CellStatus.OK  # default stamped in
        restamped = json.loads(path.read_text())
        assert restamped["schema"] == CACHE_SCHEMA_VERSION

    def test_unknown_keys_dropped_known_loaded(self, tmp_path):
        path = tmp_path / "matrix.json"
        foreign = {
            "kNNJ|d1|a": {
                "method": "kNNJ", "dataset": "d1", "setting": "a",
                "pc": 0.9, "from_the_future": [1, 2, 3],
            },
            "junk": "not a mapping",
            "nokey|d1|a": {"pc": 0.5},
        }
        path.write_text(json.dumps(foreign))
        matrix = make_matrix(tmp_path)
        assert set(matrix._results) == {"kNNJ|d1|a"}
        cell = matrix._results["kNNJ|d1|a"]
        assert cell.pc == 0.9
        assert not hasattr(cell, "from_the_future")
        assert cell.candidates == 0  # missing field defaulted

    def test_unrecognized_status_degrades_to_error(self):
        cell = CellResult.from_payload(
            {"method": "m", "dataset": "d1", "setting": "a",
             "status": "vaporized"}
        )
        assert cell is not None
        assert cell.status == CellStatus.ERROR
        assert "vaporized" in cell.error

    def test_empty_and_garbage_files_yield_empty_cache(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text("")
        assert make_matrix(tmp_path)._results == {}
        path.write_text("{totally corrupt")
        assert make_matrix(tmp_path)._results == {}


# ----------------------------------------------------------------------
# The fault injector.
# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_spec_parsing(self):
        injector = FaultInjector.from_spec(
            "raise:query; delay:tune/kNNJ:0.5 ;allocate:index:16:2"
        )
        assert [p.action for p in injector.plans] == [
            "raise", "delay", "allocate"
        ]
        assert injector.plans[1].stage == "tune/kNNJ"
        assert injector.plans[1].arg == "0.5"
        assert injector.plans[2].times == 2

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode:query")
        with pytest.raises(ValueError):
            FaultPlan.parse("raise")
        with pytest.raises(ValueError):
            FaultPlan.parse("raise:a:b:c:d")

    def test_from_env(self):
        assert FaultInjector.from_env({}) is None
        injector = FaultInjector.from_env(
            {resilience.FAULT_INJECT_ENV: "raise:query"}
        )
        assert injector is not None and len(injector.plans) == 1

    def test_raise_fires_exactly_times(self):
        injector = FaultInjector([FaultPlan("raise", "query", times=2)])
        trace = StageTrace()
        with injector.installed():
            for _ in range(2):
                with pytest.raises(RuntimeError, match="injected fault"):
                    with trace.stage("query"):
                        pass
            with trace.stage("query"):  # third entry passes through
                pass
            with trace.stage("index"):  # other stages never affected
                pass
        # Denied entries are not recorded; only the successful one is.
        assert trace.record("query").entries == 1

    def test_raise_resolves_exception_name(self):
        injector = FaultInjector(
            [FaultPlan("raise", "*", arg="ConnectionError")]
        )
        with injector.installed():
            with pytest.raises(ConnectionError):
                stages.fire_stage_hooks("enter", "anything")

    def test_delay_sleeps(self, monkeypatch):
        naps = []
        monkeypatch.setattr(resilience.time, "sleep", naps.append)
        injector = FaultInjector([FaultPlan("delay", "query", arg="3.5")])
        with injector.installed():
            stages.fire_stage_hooks("enter", "query")
        assert naps == [3.5]

    def test_allocate_holds_and_releases_ballast(self):
        injector = FaultInjector([FaultPlan("allocate", "index", arg="4")])
        with injector.installed():
            stages.fire_stage_hooks("enter", "index")
            assert sum(len(b) for b in injector._ballast) == 4 << 20
        assert injector._ballast == []

    def test_crash_spec_parses(self):
        plan = FaultPlan.parse("crash:wal/append#6:13")
        assert plan.action == "crash"
        assert plan.stage == "wal/append#6"
        assert plan.arg == "13"

    def test_crash_hard_kills_the_process(self, tmp_path):
        # The crash action is os._exit — no atexit, no finally blocks —
        # so it can only be observed from a sacrificial subprocess.
        script = tmp_path / "victim.py"
        script.write_text(textwrap.dedent(
            """
            from repro.bench.resilience import FaultInjector
            from repro.core import stages

            FaultInjector.from_env().install()
            print("before", flush=True)
            try:
                stages.fire_stage_hooks("enter", "doomed")
            finally:
                print("after", flush=True)  # must NOT run: hard crash
            """
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        env["REPRO_FAULT_INJECT"] = "crash:doomed:42"
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 42
        assert "before" in proc.stdout
        assert "after" not in proc.stdout

    def test_determinism_counters_not_randomness(self):
        """Same plans, same boundaries -> identical fault sequence."""
        def run_once():
            injector = FaultInjector([FaultPlan("raise", "query", times=1)])
            outcomes = []
            with injector.installed():
                for _ in range(4):
                    try:
                        stages.fire_stage_hooks("enter", "query")
                        outcomes.append("ok")
                    except RuntimeError:
                        outcomes.append("fault")
            return outcomes

        assert run_once() == run_once()
        assert run_once()[0] == "fault"


# ----------------------------------------------------------------------
# The matrix under failure: degradation, resumption, batching.
# ----------------------------------------------------------------------


class TestMatrixDegradation:
    def test_injected_hang_times_out_and_run_continues(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: one cell hangs, the rest complete."""

        def compute(key):
            stages.fire_stage_hooks("enter", f"tune/{key.method}")
            return CellResult.from_tuned(key, fake_tuned(key.method))

        matrix = make_matrix(
            tmp_path,
            monkeypatch,
            compute=compute,
            methods=["SBW", "kNNJ", "EJ"],
            datasets=["d5"],  # single schema setting: one cell per method
            policy=ExecutionPolicy(timeout=0.3),
            injector=FaultInjector([FaultPlan("delay", "tune/kNNJ", arg="30")]),
        )
        results = matrix.run_all(verbose=False)
        by_method = {c.method: c for c in results}
        assert by_method["kNNJ"].status == CellStatus.TIMEOUT
        assert by_method["SBW"].ok and by_method["EJ"].ok
        # The failed cell renders as "-" in Table VII, flagged in the note.
        from repro.bench.tables import table07_effectiveness

        table = table07_effectiveness(matrix)
        knnj_row = next(
            line for line in table.splitlines()
            if line.strip().startswith("kNNJ")
        )
        assert knnj_row.split()[1] == "-"
        assert "kNNJ@Da5 [timeout]" in table

    def test_injected_error_recorded_and_cached(self, tmp_path, monkeypatch):
        def compute(key):
            stages.fire_stage_hooks("enter", f"tune/{key.method}")
            return CellResult.from_tuned(key, fake_tuned(key.method))

        matrix = make_matrix(
            tmp_path,
            monkeypatch,
            compute=compute,
            methods=["SBW", "kNNJ"],
            injector=FaultInjector([FaultPlan("raise", "tune/SBW")]),
        )
        matrix.run_all(verbose=False)
        assert matrix.status("SBW", "d1", "a") == CellStatus.ERROR
        assert matrix.get("SBW", "d1", "a") is None
        raw = matrix.get("SBW", "d1", "a", include_failed=True)
        assert raw is not None and "injected fault" in raw.error
        # A fresh matrix over the same cache resumes without re-running.
        resumed = make_matrix(tmp_path, methods=["SBW", "kNNJ"])
        assert resumed.status("SBW", "d1", "a") == CellStatus.ERROR
        assert resumed.get("kNNJ", "d1", "a") is not None

    def test_oom_cell_from_memory_error(self, tmp_path, monkeypatch):
        def compute(key):
            if key.method == "SBW":
                raise MemoryError("cannot allocate")
            return CellResult.from_tuned(key, fake_tuned(key.method))

        matrix = make_matrix(
            tmp_path, monkeypatch, compute=compute, methods=["SBW", "kNNJ"]
        )
        matrix.run_all(verbose=False)
        assert matrix.status("SBW", "d1", "a") == CellStatus.OOM
        assert matrix.get("kNNJ", "d1", "a") is not None

    def test_transient_error_retries_then_records(self, tmp_path, monkeypatch):
        calls = []

        def compute(key):
            calls.append(key.method)
            raise TransientError("flaky backend")

        matrix = make_matrix(
            tmp_path,
            monkeypatch,
            compute=compute,
            policy=ExecutionPolicy(max_retries=2, backoff=0.0),
        )
        cell = matrix.run_cell(SettingKey("kNNJ", "d1", "a"))
        assert cell.status == CellStatus.ERROR
        assert cell.attempts == 3
        assert len(calls) == 3

    def test_strict_policy_reraises(self, tmp_path, monkeypatch):
        def compute(key):
            raise ValueError("bug in tuner")

        matrix = make_matrix(
            tmp_path,
            monkeypatch,
            compute=compute,
            policy=ExecutionPolicy(strict=True),
        )
        with pytest.raises(ValueError):
            matrix.run_cell(SettingKey("kNNJ", "d1", "a"))

    def test_force_reruns_failed_cell(self, tmp_path, monkeypatch):
        attempts = []

        def compute(key):
            attempts.append(1)
            if len(attempts) == 1:
                raise ValueError("only once")
            return CellResult.from_tuned(key, fake_tuned(key.method))

        matrix = make_matrix(tmp_path, monkeypatch, compute=compute)
        key = SettingKey("kNNJ", "d1", "a")
        assert not matrix.run_cell(key).ok
        assert not matrix.run_cell(key).ok  # cached failure, no re-run
        assert len(attempts) == 1
        assert matrix.run_cell(key, force=True).ok

    def test_run_all_batches_saves(self, tmp_path, monkeypatch):
        writes = []
        real_write = resilience.atomic_write_json

        def counting_write(path, payload, indent=1):
            writes.append(len(payload["cells"]))
            real_write(path, payload, indent)

        monkeypatch.setattr(resilience, "atomic_write_json", counting_write)

        def compute(key):
            return CellResult.from_tuned(key, fake_tuned(key.method))

        matrix = make_matrix(
            tmp_path,
            monkeypatch,
            compute=compute,
            methods=["SBW", "QBW", "EQBW", "SABW", "EJ"],
            datasets=["d5"],  # single schema setting: 5 cells total
            save_every=2,
        )
        matrix.run_all(verbose=False)
        # 5 cells, flush every 2 + final flush: 3 writes, not 5.
        assert writes == [2, 4, 5]
        cached = json.loads((tmp_path / "matrix.json").read_text())
        assert len(cached["cells"]) == 5

    def test_run_all_flushes_on_interrupt(self, tmp_path, monkeypatch):
        def compute(key):
            if key.method == "EQBW":
                raise KeyboardInterrupt
            return CellResult.from_tuned(key, fake_tuned(key.method))

        matrix = make_matrix(
            tmp_path,
            monkeypatch,
            compute=compute,
            methods=["SBW", "QBW", "EQBW"],
            save_every=100,
        )
        with pytest.raises(KeyboardInterrupt):
            matrix.run_all(verbose=False)
        # The two finished cells reached disk despite the huge batch.
        cached = json.loads((tmp_path / "matrix.json").read_text())
        assert set(cached["cells"]) == {"SBW|d1|a", "QBW|d1|a"}

    def test_failures_listing(self, tmp_path, monkeypatch):
        def compute(key):
            raise ValueError("nope")

        matrix = make_matrix(
            tmp_path, monkeypatch, compute=compute, datasets=["d5"]
        )
        matrix.run_all(verbose=False)
        failures = matrix.failures()
        assert [c.status for c in failures] == [CellStatus.ERROR]

    def test_excluded_cell_status(self, tmp_path):
        matrix = make_matrix(tmp_path, methods=["MH-LSH"], datasets=["d10"])
        assert matrix.status("MH-LSH", "d10", "a") == CellStatus.EXCLUDED
        assert list(matrix.cells()) == []


# ----------------------------------------------------------------------
# End-to-end: a real (tiny) tuning pass guarded by the policy.
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_real_cell_runs_clean_under_guards(self, tmp_path):
        matrix = make_matrix(
            tmp_path,
            policy=ExecutionPolicy(timeout=600, memory_budget_mb=1 << 16),
        )
        cell = matrix.run_cell(SettingKey("kNNJ", "d1", "a"))
        assert cell.ok
        assert cell.pc > 0

    @pytest.mark.skipif(not HAVE_SIGALRM, reason="needs POSIX signals")
    def test_real_tuning_pass_times_out(self, tmp_path):
        matrix = make_matrix(
            tmp_path,
            policy=ExecutionPolicy(timeout=0.05),
        )
        cell = matrix.run_cell(SettingKey("kNNJ", "d1", "a"))
        assert cell.status == CellStatus.TIMEOUT
