"""Round-trip consistency of the dense kNN tuners.

The sweep-based tuner derives PC/PQ/|C| analytically from one ranked
search; materializing the winning configuration as a real filter must
reproduce the same numbers (for the deterministic methods).
"""

import pytest

from repro.core.metrics import evaluate_candidates
from repro.tuning.dense import KNNSearchTuner


@pytest.mark.parametrize("method", ["faiss", "scann"])
def test_tuned_config_reproduces_reported_metrics(small_generated, method):
    tuner = KNNSearchTuner(method)
    result = tuner.tune(small_generated)
    filter_ = tuner.build_filter(result.params)
    candidates = filter_.candidates(
        small_generated.left, small_generated.right
    )
    evaluation = evaluate_candidates(
        candidates,
        small_generated.groundtruth,
        len(small_generated.left),
        len(small_generated.right),
    )
    assert evaluation.candidates == result.candidates
    assert evaluation.pc == pytest.approx(result.pc, abs=1e-9)
    assert evaluation.pq == pytest.approx(result.pq, abs=1e-9)


def test_deepblocker_tuner_returns_valid_result(small_generated):
    tuner = KNNSearchTuner("deepblocker", repetitions=1)
    result = tuner.tune(small_generated)
    assert 0.0 <= result.pc <= 1.0
    assert result.params["k"] >= 1
    # The materialized filter runs and produces the expected count shape.
    filter_ = tuner.build_filter(result.params)
    candidates = filter_.candidates(
        small_generated.left, small_generated.right
    )
    queries = (
        len(small_generated.left)
        if result.params["reverse"]
        else len(small_generated.right)
    )
    assert len(candidates) == int(result.params["k"]) * queries
