"""Structural regression tests over all ten registry datasets."""

import pytest

from repro.datasets.registry import DATASET_NAMES, DATASET_SPECS, load_dataset


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestPerDataset:
    def test_sizes_match_spec(self, name):
        spec = DATASET_SPECS[name]
        dataset = load_dataset(name)
        assert len(dataset.left) == spec.size1
        assert len(dataset.right) == spec.size2
        assert len(dataset.groundtruth) == spec.duplicates

    def test_groundtruth_ids_in_range(self, name):
        dataset = load_dataset(name)
        for left_id, right_id in dataset.groundtruth:
            assert 0 <= left_id < len(dataset.left)
            assert 0 <= right_id < len(dataset.right)

    def test_key_attribute_exists_somewhere(self, name):
        dataset = load_dataset(name)
        key = dataset.key_attribute
        assert dataset.left.coverage(key) > 0.3
        assert dataset.right.coverage(key) > 0.3

    def test_profiles_nonempty_text(self, name):
        dataset = load_dataset(name)
        empty = sum(
            1
            for collection in (dataset.left, dataset.right)
            for profile in collection
            if not profile.text()
        )
        total = len(dataset.left) + len(dataset.right)
        assert empty / total < 0.01

    def test_duplicates_share_rare_evidence(self, name):
        """Most duplicate pairs share at least two tokens (the signal
        every filtering method relies on)."""
        dataset = load_dataset(name)
        sharing = 0
        pairs = list(dataset.groundtruth)[:100]
        for left_id, right_id in pairs:
            left_tokens = set(dataset.left[left_id].text().split())
            right_tokens = set(dataset.right[right_id].text().split())
            if len(left_tokens & right_tokens) >= 2:
                sharing += 1
        assert sharing >= 0.85 * len(pairs)

    def test_uids_disjoint_namespaces(self, name):
        dataset = load_dataset(name)
        assert all(p.uid.startswith("L") for p in dataset.left)
        assert all(p.uid.startswith("R") for p in dataset.right)
