"""Tests for Canopy Clustering blocking."""

import pytest

from repro.blocking.canopy import CanopyClusteringBlocking
from repro.core.metrics import pair_completeness


class TestParameters:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            CanopyClusteringBlocking(t_loose=0.0)
        with pytest.raises(ValueError):
            CanopyClusteringBlocking(t_loose=0.6, t_tight=0.3)

    def test_keys_unsupported(self):
        with pytest.raises(NotImplementedError):
            CanopyClusteringBlocking().keys("x")


class TestCanopies:
    def test_finds_duplicates(self, tiny_dataset):
        builder = CanopyClusteringBlocking(
            t_loose=0.2, t_tight=0.7, model="C3G"
        )
        blocks = builder.build(tiny_dataset.left, tiny_dataset.right)
        pc = pair_completeness(
            blocks.distinct_pairs(), tiny_dataset.groundtruth
        )
        assert pc >= 2 / 3

    def test_every_entity_leaves_pool(self, small_generated):
        """Termination: the pool always shrinks (seed leaves each round)."""
        builder = CanopyClusteringBlocking(t_loose=0.99, t_tight=0.99)
        blocks = builder.build(small_generated.left, small_generated.right)
        # With near-exact thresholds canopies are tiny but the build ends.
        assert blocks is not None

    def test_loose_threshold_controls_block_size(self, small_generated):
        tight = CanopyClusteringBlocking(t_loose=0.6, t_tight=0.8, seed=1)
        loose = CanopyClusteringBlocking(t_loose=0.1, t_tight=0.8, seed=1)
        tight_pairs = len(
            tight.build(
                small_generated.left, small_generated.right
            ).distinct_pairs()
        )
        loose_pairs = len(
            loose.build(
                small_generated.left, small_generated.right
            ).distinct_pairs()
        )
        assert loose_pairs >= tight_pairs

    def test_deterministic_per_seed(self, small_generated):
        a = CanopyClusteringBlocking(seed=5).build(
            small_generated.left, small_generated.right
        )
        b = CanopyClusteringBlocking(seed=5).build(
            small_generated.left, small_generated.right
        )
        assert a.distinct_pairs() == b.distinct_pairs()

    def test_different_seeds_differ(self, small_generated):
        a = CanopyClusteringBlocking(t_loose=0.2, seed=1).build(
            small_generated.left, small_generated.right
        )
        b = CanopyClusteringBlocking(t_loose=0.2, seed=2).build(
            small_generated.left, small_generated.right
        )
        # Stochastic method: different canopy structure (almost surely).
        assert a.distinct_pairs() != b.distinct_pairs() or len(a) != len(b)

    def test_works_in_blocking_workflow(self, small_generated):
        from repro.blocking.metablocking import MetaBlocking
        from repro.blocking.workflow import BlockingWorkflow

        workflow = BlockingWorkflow(
            CanopyClusteringBlocking(t_loose=0.2, t_tight=0.6, model="C3G"),
            cleaner=MetaBlocking("ARCS", "CNP"),
        )
        candidates = workflow.candidates(
            small_generated.left, small_generated.right
        )
        assert len(candidates) > 0

    def test_schema_based_setting(self, small_generated):
        builder = CanopyClusteringBlocking(t_loose=0.3, model="C3G")
        blocks = builder.build(
            small_generated.left, small_generated.right, "title"
        )
        assert blocks is not None
