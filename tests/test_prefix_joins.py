"""Tests for the prefix-filter e-join engines (AllPairs, PPJoin).

The central invariant (paper, Section IV-C): every exact ε-Join algorithm
returns the identical candidate set.  ScanCount-based
:class:`~repro.sparse.epsilon_join.EpsilonJoin` is the oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import EntityCollection, EntityProfile
from repro.sparse.epsilon_join import EpsilonJoin
from repro.sparse.prefix_joins import (
    AllPairsJoin,
    PPJoin,
    TokenOrder,
    _min_overlap,
    _pair_overlap_requirement,
    _size_bounds,
)


class TestTokenOrder:
    def test_rarest_first(self):
        sets = [
            frozenset({"common", "rare"}),
            frozenset({"common"}),
            frozenset({"common", "other"}),
        ]
        order = TokenOrder(sets)
        assert order.sort(sets[0])[0] in ("rare",)
        assert order.sort(sets[0])[-1] == "common"

    def test_unseen_tokens_last(self):
        order = TokenOrder([frozenset({"a"})])
        assert order.sort(frozenset({"a", "zzz"}))[-1] == "zzz"

    def test_deterministic_ties(self):
        order = TokenOrder([frozenset({"a", "b"})])
        assert order.sort(frozenset({"b", "a"})) == ["a", "b"]


class TestBounds:
    @pytest.mark.parametrize("measure", ["jaccard", "cosine", "dice"])
    @pytest.mark.parametrize("threshold", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("size", [1, 5, 20])
    def test_min_overlap_is_sound(self, measure, threshold, size):
        """No qualifying pair may have overlap below the bound."""
        from repro.sparse.similarity import similarity_function

        func = similarity_function(measure)
        bound = _min_overlap(measure, threshold, size)
        # Try every feasible (other size, overlap) pair; none below the
        # bound may reach the threshold.
        for other in range(1, 40):
            for overlap in range(0, min(size, other) + 1):
                if func(other, size, overlap) >= threshold:
                    assert overlap >= bound

    @pytest.mark.parametrize("measure", ["jaccard", "cosine", "dice"])
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_size_bounds_sound(self, measure, threshold):
        from repro.sparse.similarity import similarity_function

        func = similarity_function(measure)
        query = 10
        low, high = _size_bounds(measure, threshold, query)
        for other in range(1, 60):
            best = func(other, query, min(other, query))
            if best >= threshold:
                assert low <= other <= high

    @pytest.mark.parametrize("measure", ["jaccard", "cosine", "dice"])
    def test_pair_requirement_sound(self, measure):
        from repro.sparse.similarity import similarity_function

        func = similarity_function(measure)
        for qs, isz in [(5, 5), (10, 4), (3, 12)]:
            required = _pair_overlap_requirement(measure, 0.5, qs, isz)
            for overlap in range(0, min(qs, isz) + 1):
                if func(isz, qs, overlap) >= 0.5:
                    assert overlap >= required


def _collections_from_texts(left_texts, right_texts):
    left = EntityCollection(
        EntityProfile(f"l{i}", {"t": text}) for i, text in enumerate(left_texts)
    )
    right = EntityCollection(
        EntityProfile(f"r{i}", {"t": text}) for i, text in enumerate(right_texts)
    )
    return left, right


WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]

text_strategy = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=0, max_size=6).map(" ".join),
    min_size=1,
    max_size=12,
)


class TestExactEquivalence:
    @pytest.mark.parametrize("engine_cls", [AllPairsJoin, PPJoin])
    @pytest.mark.parametrize("measure", ["jaccard", "cosine", "dice"])
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.8])
    def test_matches_scancount_on_fixtures(
        self, left_collection, right_collection, engine_cls, measure, threshold
    ):
        oracle = EpsilonJoin(threshold, model="T1G", measure=measure)
        engine = engine_cls(threshold, model="T1G", measure=measure)
        expected = oracle.candidates(left_collection, right_collection)
        actual = engine.candidates(left_collection, right_collection)
        assert actual == expected

    @pytest.mark.parametrize("engine_cls", [AllPairsJoin, PPJoin])
    def test_matches_scancount_on_generated(self, small_generated, engine_cls):
        for threshold in (0.2, 0.6):
            oracle = EpsilonJoin(threshold, model="C3G", measure="jaccard")
            engine = engine_cls(threshold, model="C3G", measure="jaccard")
            expected = oracle.candidates(
                small_generated.left, small_generated.right
            )
            actual = engine.candidates(
                small_generated.left, small_generated.right
            )
            assert actual == expected

    @given(text_strategy, text_strategy, st.sampled_from([0.25, 0.5, 0.75]))
    @settings(max_examples=30, deadline=None)
    def test_property_equivalence(self, left_texts, right_texts, threshold):
        left, right = _collections_from_texts(left_texts, right_texts)
        for measure in ("jaccard", "cosine"):
            oracle = EpsilonJoin(threshold, model="T1G", measure=measure)
            expected = oracle.candidates(left, right)
            for engine_cls in (AllPairsJoin, PPJoin):
                engine = engine_cls(threshold, model="T1G", measure=measure)
                assert engine.candidates(left, right) == expected


class TestFilteringPower:
    def test_ppjoin_verifies_no_more_than_allpairs(self, small_generated):
        """The positional filter only removes candidates."""
        allpairs = AllPairsJoin(0.5, model="C3G", measure="jaccard")
        ppjoin = PPJoin(0.5, model="C3G", measure="jaccard")
        allpairs.candidates(small_generated.left, small_generated.right)
        ppjoin.candidates(small_generated.left, small_generated.right)
        assert ppjoin.last_pairs_verified <= allpairs.last_pairs_verified

    def test_high_threshold_prunes_harder(self, small_generated):
        """Prefix filtering gets more selective as t grows — the reason
        the paper calls these algorithms high-threshold tools."""
        verified = []
        for threshold in (0.2, 0.5, 0.8):
            join = AllPairsJoin(threshold, model="C3G", measure="jaccard")
            join.candidates(small_generated.left, small_generated.right)
            verified.append(join.last_pairs_verified)
        assert verified == sorted(verified, reverse=True)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AllPairsJoin(1.2)
        with pytest.raises(ValueError):
            PPJoin(-0.1)
