"""Tests for configuration optimization: optimizer, tuners, baselines."""

import pytest

from repro.core.optimizer import GridSearchOptimizer
from repro.sparse.epsilon_join import EpsilonJoin
from repro.tuning import (
    BASELINES,
    FINE_TUNED_METHODS,
    evaluate_baseline,
    make_baseline,
    tune_method,
)
from repro.tuning.blocking import BlockingWorkflowTuner, make_builder
from repro.tuning.dense import EmbeddingCache, KNNSearchTuner, LSHTuner
from repro.tuning.result import TunedResult, better
from repro.tuning.sparse import EpsilonJoinTuner, KNNJoinTuner
from repro.tuning import spaces


class TestTunedResult:
    def test_better_prefers_feasible(self):
        feasible = TunedResult("m", pc=0.91, pq=0.1, feasible=True)
        infeasible = TunedResult("m", pc=0.99, pq=0.9, feasible=False)
        assert better(feasible, infeasible) is feasible
        assert better(infeasible, feasible) is feasible

    def test_better_prefers_higher_pq_among_feasible(self):
        low = TunedResult("m", pc=0.95, pq=0.2, feasible=True)
        high = TunedResult("m", pc=0.91, pq=0.5, feasible=True)
        assert better(low, high) is high

    def test_better_prefers_higher_pc_among_infeasible(self):
        low = TunedResult("m", pc=0.5, pq=0.9, feasible=False)
        high = TunedResult("m", pc=0.8, pq=0.1, feasible=False)
        assert better(low, high) is high

    def test_better_with_none(self):
        result = TunedResult("m", feasible=False)
        assert better(None, result) is result

    def test_describe_params(self):
        result = TunedResult("m", params={"k": 3, "a": True})
        assert result.describe_params() == "a=True, k=3"


class TestGridSearchOptimizer:
    def test_validates_target(self):
        with pytest.raises(ValueError):
            GridSearchOptimizer(target_recall=0.0)
        with pytest.raises(ValueError):
            GridSearchOptimizer(repetitions=0)

    def test_search_picks_feasible_max_pq(self, tiny_dataset):
        optimizer = GridSearchOptimizer(target_recall=0.9)
        result = optimizer.search(
            [{"threshold": t} for t in (0.9, 0.5, 0.2)],
            lambda threshold: EpsilonJoin(threshold, model="C3G"),
            tiny_dataset,
        )
        assert result.feasible
        assert result.configurations_tried == 3
        assert result.runtime > 0.0

    def test_search_empty_grid_raises(self, tiny_dataset):
        optimizer = GridSearchOptimizer()
        with pytest.raises(ValueError, match="empty"):
            optimizer.search([], lambda: None, tiny_dataset)

    def test_evaluate_deterministic_filter_single_run(self, tiny_dataset):
        optimizer = GridSearchOptimizer(repetitions=5)
        join = EpsilonJoin(0.3, model="C3G")
        a = optimizer.evaluate(join, tiny_dataset)
        b = optimizer.evaluate(join, tiny_dataset)
        assert a == b


class TestSpaces:
    def test_profile_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNING_PROFILE", raising=False)
        assert spaces.active_profile() == "fast"
        monkeypatch.setenv("REPRO_TUNING_PROFILE", "full")
        assert spaces.active_profile() == "full"
        assert spaces.active_profile("fast") == "fast"

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            spaces.active_profile("medium")

    def test_full_grids_superset_sizes(self):
        assert len(spaces.block_filtering_ratios("full")) > len(
            spaces.block_filtering_ratios("fast")
        )
        assert len(spaces.epsilon_thresholds("full")) > len(
            spaces.epsilon_thresholds("fast")
        )
        assert len(spaces.dense_k_values("full")) > len(
            spaces.dense_k_values("fast")
        )

    def test_builder_grids(self):
        assert spaces.builder_grid("standard") == [{}]
        assert all("q" in c for c in spaces.builder_grid("qgrams"))
        assert all(
            {"l_min", "b_max"} <= set(c)
            for c in spaces.builder_grid("suffix-arrays")
        )
        with pytest.raises(ValueError):
            spaces.builder_grid("nope")

    def test_minhash_full_grid_products(self):
        for config in spaces.minhash_grid("full"):
            assert config["bands"] * config["rows"] in (128, 256, 512)

    def test_make_builder_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_builder("nope")


class TestBlockingTuner:
    def test_finds_feasible_config(self, small_generated):
        tuner = BlockingWorkflowTuner("SBW")
        result = tuner.tune(small_generated)
        assert result.feasible
        assert result.pc >= 0.9
        assert result.configurations_tried > 10

    def test_build_workflow_reproduces_result(self, small_generated):
        tuner = BlockingWorkflowTuner("SBW")
        result = tuner.tune(small_generated)
        workflow = tuner.build_workflow(result.params)
        candidates = workflow.candidates(
            small_generated.left, small_generated.right
        )
        from repro.core.metrics import evaluate_candidates

        evaluation = evaluate_candidates(
            candidates,
            small_generated.groundtruth,
            len(small_generated.left),
            len(small_generated.right),
        )
        assert evaluation.pc == pytest.approx(result.pc, abs=1e-9)
        assert evaluation.candidates == result.candidates

    def test_proactive_workflow_skips_block_cleaning(self, small_generated):
        tuner = BlockingWorkflowTuner("SABW")
        result = tuner.tune(small_generated)
        assert result.params.get("purging", False) is False
        assert result.params.get("ratio", 1.0) == 1.0

    def test_unknown_workflow(self):
        with pytest.raises(ValueError):
            BlockingWorkflowTuner("XYZ")


class TestSparseTuners:
    def test_epsilon_tuner_feasible(self, small_generated):
        result = EpsilonJoinTuner().tune(small_generated)
        assert result.feasible
        assert 0.0 < result.params["threshold"] <= 1.0

    def test_epsilon_build_filter_reproduces(self, small_generated):
        tuner = EpsilonJoinTuner()
        result = tuner.tune(small_generated)
        filter_ = tuner.build_filter(result.params)
        candidates = filter_.candidates(
            small_generated.left, small_generated.right
        )
        from repro.core.metrics import pair_completeness

        assert pair_completeness(
            candidates, small_generated.groundtruth
        ) == pytest.approx(result.pc, abs=1e-9)

    def test_knn_tuner_feasible_and_small_k(self, small_generated):
        result = KNNJoinTuner().tune(small_generated)
        assert result.feasible
        assert result.params["k"] <= 10  # cardinality thresholds stay small

    def test_knn_build_filter_reproduces(self, small_generated):
        tuner = KNNJoinTuner()
        result = tuner.tune(small_generated)
        filter_ = tuner.build_filter(result.params)
        candidates = filter_.candidates(
            small_generated.left, small_generated.right
        )
        assert len(candidates) == result.candidates


class TestDenseTuners:
    def test_faiss_tuner(self, small_generated):
        result = KNNSearchTuner("faiss").tune(small_generated)
        assert result.feasible
        assert result.candidates == pytest.approx(
            result.params["k"] * min(len(small_generated.left),
                                     len(small_generated.right)),
            rel=0.5,
        ) or result.candidates > 0

    def test_embedding_cache_reused(self, small_generated):
        cache = EmbeddingCache()
        KNNSearchTuner("faiss", cache=cache).tune(small_generated)
        first_entries = len(cache._cache)
        KNNSearchTuner("scann", cache=cache).tune(small_generated)
        assert len(cache._cache) == first_entries  # same matrices reused

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            KNNSearchTuner("annoy")
        with pytest.raises(ValueError):
            LSHTuner("slsh")

    def test_lsh_tuner_runs(self, small_generated):
        result = LSHTuner("mh-lsh", repetitions=1).tune(small_generated)
        assert result.configurations_tried == len(spaces.minhash_grid("fast"))
        assert result.candidates > 0


class TestBaselines:
    @pytest.mark.parametrize("name", BASELINES)
    def test_factory(self, name):
        filter_ = make_baseline(name)
        assert filter_ is not None

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            make_baseline("XXX")

    def test_evaluate_baseline(self, small_generated):
        result = evaluate_baseline("PBW", small_generated, repetitions=1)
        assert result.method == "PBW"
        assert result.pc >= 0.9
        assert result.runtime > 0.0

    def test_tune_method_dispatch(self, small_generated):
        for method in ("SBW", "EJ", "kNNJ", "FAISS"):
            assert method in FINE_TUNED_METHODS
            result = tune_method(method, small_generated)
            assert result.pc > 0.0

    def test_tune_method_unknown(self, small_generated):
        with pytest.raises(ValueError):
            tune_method("XYZ", small_generated)
