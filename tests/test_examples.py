"""Smoke tests: the fast example scripts run and print what they promise."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "PC" in output
    assert "knn-join" in output


def test_custom_dataset():
    output = run_example("custom_dataset.py")
    assert "wirless" in output  # the typo survived the 3-gram join
    assert "PC=1.00" in output


def test_deduplication():
    output = run_example("deduplication.py")
    assert "duplicate clusters" in output
    assert "kNN-Join" in output


def test_end_to_end_er():
    output = run_example("end_to_end_er.py")
    assert "end-to-end" in output
    assert "filtering" in output


@pytest.mark.parametrize(
    "name",
    ["product_deduplication.py", "bibliographic_linkage.py",
     "compare_filters.py", "auto_configuration.py"],
)
def test_other_examples_compile(name):
    """The slower examples at least byte-compile."""
    source = (EXAMPLES / name).read_text()
    compile(source, name, "exec")
