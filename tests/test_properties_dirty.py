"""Property-based tests for the Dirty ER adapter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateSet
from repro.dirty.adapter import clusters_to_groundtruth, evaluate_dirty

clusters_strategy = st.lists(
    st.lists(st.integers(0, 20), min_size=2, max_size=5),
    min_size=0,
    max_size=6,
)


@given(clusters_strategy)
def test_groundtruth_pairs_canonical(clusters):
    gt = clusters_to_groundtruth(clusters)
    for left, right in gt:
        assert left < right


@given(clusters_strategy)
def test_groundtruth_size_bound(clusters):
    gt = clusters_to_groundtruth(clusters)
    upper = sum(
        len(set(c)) * (len(set(c)) - 1) // 2 for c in clusters
    )
    assert len(gt) <= upper


@given(clusters_strategy, st.integers(21, 40))
def test_evaluate_dirty_bounds(clusters, size):
    gt = clusters_to_groundtruth(clusters)
    candidates = CandidateSet(gt)  # perfect filter
    evaluation = evaluate_dirty(candidates, gt, size)
    if len(gt):
        assert evaluation.pc == 1.0
        assert evaluation.pq == 1.0
    assert 0.0 <= evaluation.rr <= 1.0


@given(clusters_strategy)
@settings(max_examples=30)
def test_overlapping_clusters_merge_pairs(clusters):
    # Feeding the same clusters twice yields the same groundtruth.
    once = clusters_to_groundtruth(clusters)
    twice = clusters_to_groundtruth(list(clusters) + list(clusters))
    assert once.as_frozenset() == twice.as_frozenset()
