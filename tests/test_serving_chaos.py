"""Chaos suite: concurrent serving under injected faults and crashes.

The acceptance bar of the serving layer.  Three escalating levels:

* **Concurrent differential replay** — per incremental family, 200
  seeded random mutation sequences are admitted through a
  :class:`~repro.core.serving.ServingIndex` while reader threads query
  concurrently; every recorded answer is byte-identical (fastpairs keys)
  to a from-scratch rebuild of exactly the mutation prefix the pinned
  snapshot had applied.
* **Faulted replay** — the same oracle holds while a
  :class:`~repro.bench.resilience.FaultInjector` drives transient
  raises, delays and allocation ballast into the writer's stage
  boundaries (the writer retries through them).
* **Crash recovery** — a sacrificial subprocess is hard-killed
  (``os._exit``) mid-WAL-append / mid-fsync / mid-publish; the parent
  restarts the service from the surviving bytes and asserts recovery is
  byte-identical to the acknowledged history.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.bench.resilience import FaultInjector
from repro.core.incremental import _smoke_pool, random_operations
from repro.core.serving import ServingIndex, WriteAheadLog, chaos_replay_check
from repro.dense import (
    HashedNGramEmbedder,
    IncrementalHyperplaneLSH,
    IncrementalMinHashLSH,
)
from repro.blocking import IncrementalBlockIndex, StandardBlocking
from repro.sparse import IncrementalScanCountFilter

# Same family configurations as the batch-vs-stream parity suite, so the
# two oracles pin the same implementations.
FAMILIES = {
    "scancount-eps": lambda: IncrementalScanCountFilter(
        threshold=0.3, model="T1G", measure="cosine"
    ),
    "scancount-knn": lambda: IncrementalScanCountFilter(
        k=3, model="T1G", measure="cosine"
    ),
    "minhash-lsh": lambda: IncrementalMinHashLSH(
        bands=8, rows=2, shingle_k=2, seed=3
    ),
    "hyperplane-lsh": lambda: IncrementalHyperplaneLSH(
        tables=2, hashes=6, seed=3, embedder=HashedNGramEmbedder(dim=32)
    ),
    "blocks": lambda: IncrementalBlockIndex(builder=StandardBlocking()),
}

FAMILY_NAMES = tuple(FAMILIES)

#: Acceptance floor: concurrent randomized sequences per family.
SEQUENCE_CASES = 200


# ----------------------------------------------------------------------
# Level 1: concurrent differential replay, no faults.
# ----------------------------------------------------------------------


class TestConcurrentReplay:
    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_concurrent_sequences_match_rebuild_oracle(self, name):
        factory = FAMILIES[name]
        checked = 0
        for case in range(SEQUENCE_CASES):
            pool = _smoke_pool(8, seed=case)
            rng = np.random.default_rng(40_000 + case)
            operations = random_operations(pool, rng, 14)
            checked += chaos_replay_check(
                factory,
                operations,
                readers=2,
                queries_per_reader=2,
                compact_every=6 if case % 3 == 0 else None,
                serving_kwargs={"batch_limit": 3},
                seed=case,
            )
        # Far more checks than sequences: every sequence ends with a
        # full query_many sweep on top of the concurrent reads.
        assert checked >= SEQUENCE_CASES

    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_churn_with_many_readers(self, name):
        # One long removal-heavy stream under a wider reader pool.
        factory = FAMILIES[name]
        pool = _smoke_pool(14, seed=91)
        rng = np.random.default_rng(92)
        operations = random_operations(
            pool, rng, 120, add_weight=0.4, remove_weight=0.35
        )
        checked = chaos_replay_check(
            factory,
            operations,
            readers=4,
            queries_per_reader=8,
            compact_every=25,
            serving_kwargs={"batch_limit": 5},
            seed=93,
        )
        assert checked >= 14  # at least the final full sweep

    def test_durable_concurrent_replay(self, tmp_path):
        # The WAL path (append + group fsync per batch) under the same
        # concurrent oracle: durability must not perturb answers.
        factory = FAMILIES["scancount-eps"]
        pool = _smoke_pool(10, seed=7)
        rng = np.random.default_rng(8)
        operations = random_operations(pool, rng, 40)
        checked = chaos_replay_check(
            factory,
            operations,
            readers=2,
            queries_per_reader=4,
            serving_kwargs={
                "directory": tmp_path,
                "batch_limit": 4,
                "checkpoint_every": 10,
            },
            seed=9,
        )
        assert checked > 0
        # And the directory restarts into the same final state.
        oracle = factory()
        live = {}
        for op in operations:
            if op.kind == "add":
                live[op.profile.uid] = op.profile
            elif op.kind == "remove":
                live.pop(op.uid, None)
        for profile in live.values():
            oracle.add(profile)
        with ServingIndex(factory, directory=tmp_path) as recovered:
            for probe in pool:
                assert recovered.query(probe) == oracle.query(probe)


# ----------------------------------------------------------------------
# Level 2: the same oracle with faults injected into the writer.
# ----------------------------------------------------------------------


FAULT_SCENARIOS = {
    "transient-raises": "raise:add:RuntimeError:2;raise:remove:RuntimeError:1",
    "publish-delays": "delay:serving/publish:0.01:3",
    "fsync-delay": "delay:wal/fsync:0.01:2",
    "memory-ballast": "allocate:serving/publish:1:2",
}


class TestFaultedReplay:
    @pytest.mark.parametrize("scenario", sorted(FAULT_SCENARIOS))
    @pytest.mark.parametrize("name", ("scancount-eps", "minhash-lsh"))
    def test_faulted_sequences_stay_byte_identical(
        self, name, scenario, tmp_path
    ):
        factory = FAMILIES[name]
        spec = FAULT_SCENARIOS[scenario]
        serving_kwargs = {
            "batch_limit": 2,
            "transient_errors": (RuntimeError, MemoryError),
            "max_retries": 4,
            "backoff": 0.001,
        }
        if "wal" in spec:
            serving_kwargs["directory"] = tmp_path
        for case in range(5):
            pool = _smoke_pool(8, seed=200 + case)
            rng = np.random.default_rng(60_000 + case)
            operations = random_operations(pool, rng, 16)
            injector = FaultInjector.from_spec(spec)
            if "directory" in serving_kwargs:
                serving_kwargs["directory"] = tmp_path / f"case{case}"
            with injector.installed():
                checked = chaos_replay_check(
                    factory,
                    operations,
                    readers=2,
                    queries_per_reader=2,
                    serving_kwargs=serving_kwargs,
                    seed=case,
                )
            assert checked > 0

    def test_retry_exhaustion_degrades_cleanly(self):
        # An unbounded fault storm wedges the writer; the service must
        # degrade (refuse mutations, keep serving reads), not corrupt.
        factory = FAMILIES["scancount-eps"]
        pool = _smoke_pool(6, seed=3)
        service = ServingIndex(
            factory,
            transient_errors=(RuntimeError,),
            max_retries=1,
            backoff=0.001,
        )
        service.add(pool[0])
        expected = service.query(pool[0])
        injector = FaultInjector.from_spec("raise:add:RuntimeError:50")
        with injector.installed():
            with pytest.raises(Exception):
                service.add(pool[1])
        assert service.health()["status"] == "degraded"
        assert service.query(pool[0]) == expected
        service.close()


# ----------------------------------------------------------------------
# Level 3: hard-crash a sacrificial serving process, recover, compare.
# ----------------------------------------------------------------------

_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.bench.resilience import FaultInjector
    from repro.core.incremental import _smoke_pool
    from repro.core.serving import ServingIndex

    from repro.sparse import IncrementalScanCountFilter

    directory = sys.argv[1]
    checkpoint_every = int(sys.argv[2])

    injector = FaultInjector.from_env()
    if injector is not None:
        injector.install()

    factory = lambda: IncrementalScanCountFilter(threshold=0.3)
    pool = _smoke_pool(10, seed=31)
    service = ServingIndex(
        factory,
        directory=directory,
        batch_limit=1,
        checkpoint_every=checkpoint_every or None,
    )
    for profile in pool:
        service.add(profile)          # blocks until durable + visible
        print(f"acked {profile.uid}", flush=True)
    print("survived", flush=True)     # only without a crash plan
    service.close()
    """
)


def _run_child(tmp_path, fault_spec, checkpoint_every=0):
    directory = tmp_path / "state"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    if fault_spec:
        env["REPRO_FAULT_INJECT"] = fault_spec
    else:
        env.pop("REPRO_FAULT_INJECT", None)
    script = tmp_path / "child.py"
    script.write_text(_CHILD_SCRIPT)
    proc = subprocess.run(
        [sys.executable, str(script), str(directory), str(checkpoint_every)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    acked = [
        line.split(" ", 1)[1]
        for line in proc.stdout.splitlines()
        if line.startswith("acked ")
    ]
    return proc, directory, acked


def _scancount_factory():
    return IncrementalScanCountFilter(threshold=0.3)


class TestCrashRecovery:
    def test_crash_mid_wal_append_recovers_acked_history(self, tmp_path):
        # Kill the process halfway through appending record seq 6: the
        # line is genuinely torn on disk.  Everything acknowledged
        # before the crash must survive; the torn record must not.
        proc, directory, acked = _run_child(
            tmp_path, "crash:wal/append#6:13"
        )
        assert proc.returncode == 13
        assert "survived" not in proc.stdout
        assert len(acked) == 5  # seqs 1..5 acked, 6 torn

        records, clean = WriteAheadLog.replay(directory / "wal.jsonl")
        assert [r["uid"] for r in records] == acked
        # The file really is torn: raw bytes extend past the clean prefix.
        assert clean < (directory / "wal.jsonl").stat().st_size

        pool = _smoke_pool(10, seed=31)
        oracle = _scancount_factory()
        for profile in pool:
            if profile.uid in acked:
                oracle.add(profile)
        with ServingIndex(_scancount_factory, directory=directory) as svc:
            assert sorted(p.uid for p in svc.catalog()) == sorted(acked)
            for probe in pool:
                assert svc.query(probe) == oracle.query(probe)
            # The service is fully writable again after recovery.
            missing = [p for p in pool if p.uid not in acked]
            svc.add(missing[0])
            assert missing[0].uid in svc

    def test_crash_mid_fsync_recovers_prefix(self, tmp_path):
        # Crash inside fsync: the batch's line is fully written but the
        # op was never acknowledged.  Recovery may keep it (durable
        # bytes) — it must simply equal *some* clean prefix of the
        # submission order, and answer like its rebuild.
        proc, directory, acked = _run_child(tmp_path, "crash:wal/fsync:7:4")
        assert proc.returncode == 7
        records, __ = WriteAheadLog.replay(directory / "wal.jsonl")
        survived = [r["uid"] for r in records]
        pool = _smoke_pool(10, seed=31)
        order = [p.uid for p in pool]
        assert survived == order[: len(survived)]
        assert set(acked).issubset(set(survived))
        oracle = _scancount_factory()
        for profile in pool:
            if profile.uid in survived:
                oracle.add(profile)
        with ServingIndex(_scancount_factory, directory=directory) as svc:
            for probe in pool:
                assert svc.query(probe) == oracle.query(probe)

    def test_crash_mid_publish_never_loses_durable_ops(self, tmp_path):
        # Crash between fsync and publish: the op is durable but not
        # acked.  Recovery must replay it — ack is a *visibility*
        # promise, durability happens strictly earlier.
        proc, directory, acked = _run_child(
            tmp_path, "crash:serving/publish:11:5"
        )
        assert proc.returncode == 11
        records, __ = WriteAheadLog.replay(directory / "wal.jsonl")
        survived = [r["uid"] for r in records]
        assert len(survived) >= len(acked)
        assert set(acked).issubset(set(survived))
        with ServingIndex(_scancount_factory, directory=directory) as svc:
            assert sorted(p.uid for p in svc.catalog()) == sorted(survived)

    def test_crash_after_checkpoint_merges_checkpoint_and_wal(self, tmp_path):
        # With checkpoints every 3 ops, a crash at seq 8 recovers from
        # checkpoint + WAL suffix; the merge must be seamless.
        proc, directory, acked = _run_child(
            tmp_path, "crash:wal/append#8:13", checkpoint_every=3
        )
        assert proc.returncode == 13
        assert len(acked) == 7
        assert (directory / "checkpoint.json").exists()
        checkpoint = json.loads((directory / "checkpoint.json").read_text())
        assert checkpoint["seq"] >= 3
        pool = _smoke_pool(10, seed=31)
        oracle = _scancount_factory()
        for profile in pool:
            if profile.uid in acked:
                oracle.add(profile)
        with ServingIndex(_scancount_factory, directory=directory) as svc:
            assert sorted(p.uid for p in svc.catalog()) == sorted(acked)
            for probe in pool:
                assert svc.query(probe) == oracle.query(probe)

    def test_no_fault_control_run(self, tmp_path):
        # The sacrificial harness itself is sound: without a fault plan
        # the child survives and every op lands.
        proc, directory, acked = _run_child(tmp_path, "")
        assert proc.returncode == 0, proc.stderr
        assert "survived" in proc.stdout
        assert len(acked) == 10
        with ServingIndex(_scancount_factory, directory=directory) as svc:
            assert len(svc) == 10
