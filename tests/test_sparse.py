"""Unit tests for the sparse NN methods: similarity, ScanCount, joins."""

import pytest

from repro.core.metrics import pair_completeness
from repro.sparse.epsilon_join import EpsilonJoin
from repro.sparse.knn_join import DefaultKNNJoin, KNNJoin, default_knn_join
from repro.sparse.scancount import ScanCountIndex
from repro.sparse.similarity import (
    cosine,
    dice,
    jaccard,
    set_similarity,
    similarity_function,
)
from repro.sparse.topk_join import TopKJoin


class TestSimilarityMeasures:
    def test_cosine_identical_sets(self):
        assert cosine(3, 3, 3) == pytest.approx(1.0)

    def test_cosine_disjoint(self):
        assert cosine(3, 4, 0) == 0.0

    def test_cosine_zero_size(self):
        assert cosine(0, 5, 0) == 0.0

    def test_dice(self):
        assert dice(2, 2, 2) == 1.0
        assert dice(3, 1, 1) == pytest.approx(0.5)

    def test_jaccard(self):
        assert jaccard(3, 3, 3) == 1.0
        assert jaccard(2, 2, 1) == pytest.approx(1 / 3)

    def test_ordering_relation(self):
        # For any overlap: jaccard <= dice, and all within [0, 1].
        for a, b, o in [(5, 3, 2), (10, 10, 5), (4, 8, 3)]:
            assert 0.0 <= jaccard(a, b, o) <= dice(a, b, o) <= 1.0

    def test_similarity_function_lookup(self):
        assert similarity_function("COSINE") is cosine
        with pytest.raises(ValueError):
            similarity_function("euclid")

    def test_set_similarity_convenience(self):
        a = frozenset({"x", "y"})
        b = frozenset({"y", "z"})
        assert set_similarity(a, b, "jaccard") == pytest.approx(1 / 3)


class TestScanCountIndex:
    def test_overlaps_exact(self):
        sets = [frozenset({"a", "b"}), frozenset({"b", "c"}), frozenset({"d"})]
        index = ScanCountIndex(sets)
        overlaps = index.overlaps(frozenset({"b", "c", "e"}))
        assert overlaps == {0: 1, 1: 2}

    def test_zero_overlap_absent(self):
        index = ScanCountIndex([frozenset({"a"})])
        assert index.overlaps(frozenset({"z"})) == {}

    def test_size_of(self):
        index = ScanCountIndex([frozenset({"a", "b", "c"})])
        assert index.size_of(0) == 3

    def test_vocabulary_size(self):
        index = ScanCountIndex([frozenset({"a", "b"}), frozenset({"b"})])
        assert index.vocabulary_size == 2

    def test_empty_query(self):
        index = ScanCountIndex([frozenset({"a"})])
        assert index.overlaps(frozenset()) == {}

    def test_len(self):
        assert len(ScanCountIndex([frozenset(), frozenset({"x"})])) == 2


class TestEpsilonJoin:
    def test_high_threshold_exact_matches_only(
        self, left_collection, right_collection
    ):
        join = EpsilonJoin(threshold=1.0, model="T1G")
        candidates = join.candidates(left_collection, right_collection)
        assert (1, 1) in candidates  # identical titles
        assert (0, 3) not in candidates

    def test_lower_threshold_superset(self, left_collection, right_collection):
        strict = EpsilonJoin(threshold=0.9).candidates(
            left_collection, right_collection
        )
        loose = EpsilonJoin(threshold=0.3).candidates(
            left_collection, right_collection
        )
        assert strict.as_frozenset() <= loose.as_frozenset()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            EpsilonJoin(threshold=1.5)

    def test_finds_duplicates(self, tiny_dataset):
        join = EpsilonJoin(threshold=0.3, model="C3G")
        candidates = join.candidates(tiny_dataset.left, tiny_dataset.right)
        assert pair_completeness(candidates, tiny_dataset.groundtruth) == 1.0

    def test_phase_timer(self, left_collection, right_collection):
        join = EpsilonJoin(threshold=0.5)
        join.candidates(left_collection, right_collection)
        assert set(join.timer.as_dict()) == {"preprocess", "index", "query"}

    def test_cleaning_changes_tokens(self, left_collection, right_collection):
        plain = EpsilonJoin(threshold=0.5, cleaning=False)
        cleaned = EpsilonJoin(threshold=0.5, cleaning=True)
        # Both run without error; results may differ but stay valid.
        a = plain.candidates(left_collection, right_collection)
        b = cleaned.candidates(left_collection, right_collection)
        assert isinstance(len(a), int) and isinstance(len(b), int)


class TestKNNJoin:
    def test_k1_returns_best_neighbor(self, left_collection, right_collection):
        join = KNNJoin(k=1, model="C3G")
        candidates = join.candidates(left_collection, right_collection)
        assert (1, 1) in candidates

    def test_ties_kept_beyond_k(self):
        from repro.core.profile import EntityCollection, EntityProfile

        left = EntityCollection(
            [
                EntityProfile("l0", {"t": "alpha beta"}),
                EntityProfile("l1", {"t": "alpha gamma"}),
            ]
        )
        right = EntityCollection([EntityProfile("r0", {"t": "alpha"})])
        join = KNNJoin(k=1, model="T1G")
        candidates = join.candidates(left, right)
        # Both indexed entities are equidistant: k=1 keeps both (paper's
        # distinct-similarity tie rule).
        assert len(candidates) == 2

    def test_larger_k_superset(self, tiny_dataset):
        small = KNNJoin(k=1, model="C3G").candidates(
            tiny_dataset.left, tiny_dataset.right
        )
        large = KNNJoin(k=3, model="C3G").candidates(
            tiny_dataset.left, tiny_dataset.right
        )
        assert small.as_frozenset() <= large.as_frozenset()

    def test_reverse_changes_direction_not_orientation(
        self, left_collection, right_collection
    ):
        join = KNNJoin(k=1, model="C3G", reverse=True)
        candidates = join.candidates(left_collection, right_collection)
        # Pairs remain (E1 id, E2 id) even when E2 is indexed.
        for left, right in candidates:
            assert 0 <= left < len(left_collection)
            assert 0 <= right < len(right_collection)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNJoin(k=0)

    def test_not_commutative(self, left_collection, right_collection):
        forward = KNNJoin(k=1, model="C3G").candidates(
            left_collection, right_collection
        )
        backward = KNNJoin(k=1, model="C3G", reverse=True).candidates(
            left_collection, right_collection
        )
        # Usually different; at minimum both valid and non-empty.
        assert len(forward) > 0 and len(backward) > 0


class TestDefaultKNNJoin:
    def test_defaults(self):
        baseline = default_knn_join()
        assert isinstance(baseline, DefaultKNNJoin)
        assert baseline.k == 5
        assert baseline.model.code == "C5GM"
        assert baseline.measure_name == "cosine"
        assert baseline.cleaning

    def test_queries_with_smaller_side(self, small_generated):
        baseline = default_knn_join()
        baseline.candidates(small_generated.left, small_generated.right)
        # |E1|=60 < |E2|=80, so E1 becomes the query set (reverse=True).
        assert baseline.reverse


class TestTopKJoin:
    def test_returns_k_best_pairs(self, left_collection, right_collection):
        join = TopKJoin(k=1, model="T1G")
        candidates = join.candidates(left_collection, right_collection)
        # The single best pair is the identical title (similarity 1.0);
        # ties at the cutoff are kept.
        assert (1, 1) in candidates

    def test_global_not_local(self, left_collection, right_collection):
        topk = TopKJoin(k=2, model="C3G").candidates(
            left_collection, right_collection
        )
        knn = KNNJoin(k=2, model="C3G").candidates(
            left_collection, right_collection
        )
        # kNN-Join returns ~k pairs per query; top-k join returns ~k total.
        assert len(topk) <= len(knn)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKJoin(k=0)
