"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.blocks import Block, BlockCollection
from repro.blocking.cleaning import BlockFiltering, BlockPurging
from repro.blocking.metablocking import (
    PRUNING_ALGORITHMS,
    WEIGHTING_SCHEMES,
    ComparisonPropagation,
    MetaBlocking,
    PairGraph,
    prune_mask,
)
from repro.core.candidates import CandidateSet
from repro.core.groundtruth import GroundTruth
from repro.core.metrics import (
    evaluate_candidates,
    f_measure,
    pair_completeness,
    pairs_quality,
)
from repro.sparse.similarity import cosine, dice, jaccard
from repro.text.porter import stem
from repro.text.tokenizers import (
    character_qgrams,
    multiset_tokens,
    normalize,
    shingles,
    word_tokens,
)

pairs_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80
)

texts = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs")),
    max_size=60,
)


# ----------------------------------------------------------------------
# Metrics.
# ----------------------------------------------------------------------

@given(pairs_strategy, pairs_strategy)
def test_metrics_bounded(candidate_pairs, gt_pairs):
    candidates = CandidateSet(candidate_pairs)
    groundtruth = GroundTruth(gt_pairs)
    pc = pair_completeness(candidates, groundtruth)
    pq = pairs_quality(candidates, groundtruth)
    assert 0.0 <= pc <= 1.0
    assert 0.0 <= pq <= 1.0


@given(pairs_strategy)
def test_perfect_candidates_have_perfect_recall(gt_pairs):
    groundtruth = GroundTruth(gt_pairs)
    candidates = CandidateSet(gt_pairs)
    if len(groundtruth):
        assert pair_completeness(candidates, groundtruth) == 1.0
        assert pairs_quality(candidates, groundtruth) == 1.0


@given(pairs_strategy, pairs_strategy)
def test_evaluation_consistency(candidate_pairs, gt_pairs):
    candidates = CandidateSet(candidate_pairs)
    groundtruth = GroundTruth(gt_pairs)
    evaluation = evaluate_candidates(candidates, groundtruth, 31, 31)
    assert evaluation.duplicates_found <= len(groundtruth)
    assert evaluation.duplicates_found <= len(candidates)
    assert evaluation.f1 == f_measure(evaluation.pc, evaluation.pq)


@given(st.floats(0, 1), st.floats(0, 1))
def test_f_measure_bounds(pc, pq):
    f1 = f_measure(pc, pq)
    assert 0.0 <= f1 <= 1.0
    assert f1 <= max(pc, pq) + 1e-12


# ----------------------------------------------------------------------
# Similarity measures.
# ----------------------------------------------------------------------

set_sizes = st.tuples(st.integers(0, 50), st.integers(0, 50))


@given(set_sizes, st.integers(0, 50))
def test_similarities_bounded(sizes, overlap):
    a, b = sizes
    overlap = min(overlap, a, b)
    for measure in (cosine, dice, jaccard):
        value = measure(a, b, overlap)
        assert 0.0 <= value <= 1.0 + 1e-9


@given(st.integers(1, 50))
def test_identical_sets_have_similarity_one(size):
    assert cosine(size, size, size) == 1.0
    assert dice(size, size, size) == 1.0
    assert jaccard(size, size, size) == 1.0


@given(set_sizes, st.integers(0, 50))
def test_jaccard_le_dice_le_cosine_ordering(sizes, overlap):
    a, b = sizes
    overlap = min(overlap, a, b)
    if a and b:
        assert jaccard(a, b, overlap) <= dice(a, b, overlap) + 1e-12
        # Dice <= Cosine by AM-GM: (a+b)/2 >= sqrt(ab).
        assert dice(a, b, overlap) <= cosine(a, b, overlap) + 1e-12


# ----------------------------------------------------------------------
# Tokenization.
# ----------------------------------------------------------------------

@given(texts)
def test_normalize_idempotent(text):
    once = normalize(text)
    assert normalize(once) == once


@given(texts)
def test_word_tokens_contain_no_whitespace(text):
    for token in word_tokens(text):
        assert " " not in token
        assert token == token.lower()


@given(texts, st.integers(2, 5))
def test_qgram_lengths(text, q):
    for gram in character_qgrams(text, q):
        assert 1 <= len(gram) <= q


@given(texts, st.integers(2, 5))
def test_shingle_count(text, k):
    normalized = normalize(text)
    result = shingles(text, k)
    if normalized:
        expected = max(1, len(normalized) - k + 1)
        assert len(result) == expected


@given(st.lists(st.sampled_from("abc"), max_size=20))
def test_multiset_tokens_bijective(tokens):
    counted = multiset_tokens(tokens)
    assert len(counted) == len(tokens)
    assert len(set(counted)) == len(counted)  # all distinct


@given(texts)
def test_stemmer_never_lengthens(text):
    for token in word_tokens(text):
        assert len(stem(token)) <= max(len(token), 2)


# ----------------------------------------------------------------------
# Blocking invariants.
# ----------------------------------------------------------------------

def _blocks_from_pairs(assignments):
    """Build a small random block collection from generated assignments."""
    blocks = []
    for key, (lefts, rights) in enumerate(assignments):
        blocks.append(
            Block(str(key), tuple(sorted(set(lefts))), tuple(sorted(set(rights))))
        )
    return BlockCollection(blocks)


block_strategy = st.lists(
    st.tuples(
        st.lists(st.integers(0, 12), min_size=1, max_size=5),
        st.lists(st.integers(0, 12), min_size=1, max_size=5),
    ),
    min_size=1,
    max_size=10,
)


@given(block_strategy)
def test_comparison_propagation_no_recall_loss(assignments):
    blocks = _blocks_from_pairs(assignments)
    distinct = blocks.distinct_pairs()
    cleaned = ComparisonPropagation().clean(blocks)
    assert cleaned.as_frozenset() == distinct.as_frozenset()


@given(block_strategy)
def test_purging_returns_subset(assignments):
    blocks = _blocks_from_pairs(assignments)
    cleaned = BlockPurging().clean(blocks, total_entities=26)
    assert len(cleaned) <= len(blocks)
    original = {b.key for b in blocks}
    assert all(b.key in original for b in cleaned)


@given(block_strategy, st.sampled_from([0.2, 0.5, 0.8]))
def test_filtering_pairs_subset(assignments, ratio):
    blocks = _blocks_from_pairs(assignments)
    cleaned = BlockFiltering(ratio).clean(blocks)
    assert (
        cleaned.distinct_pairs().as_frozenset()
        <= blocks.distinct_pairs().as_frozenset()
    )


@given(block_strategy, st.sampled_from(WEIGHTING_SCHEMES))
@settings(max_examples=40)
def test_weights_finite_nonnegative(assignments, scheme):
    graph = PairGraph(_blocks_from_pairs(assignments))
    weights = graph.weights(scheme)
    assert np.all(np.isfinite(weights))
    assert np.all(weights >= 0.0)


@given(
    block_strategy,
    st.sampled_from(WEIGHTING_SCHEMES),
    st.sampled_from(PRUNING_ALGORITHMS),
)
@settings(max_examples=40)
def test_metablocking_subset_of_distinct_pairs(assignments, scheme, pruning):
    blocks = _blocks_from_pairs(assignments)
    cleaned = MetaBlocking(scheme, pruning).clean(blocks)
    assert cleaned.as_frozenset() <= blocks.distinct_pairs().as_frozenset()


@given(block_strategy)
def test_pair_keys_consistent_with_distinct_pairs(assignments):
    blocks = _blocks_from_pairs(assignments)
    width = 13
    keys = set(blocks.pair_keys(width).tolist())
    pairs = {l * width + r for l, r in blocks.distinct_pairs()}
    assert keys == pairs


# ----------------------------------------------------------------------
# Pruning monotonicity.
# ----------------------------------------------------------------------

@given(block_strategy)
@settings(max_examples=30)
def test_reciprocal_pruning_subsets(assignments):
    graph = PairGraph(_blocks_from_pairs(assignments))
    if not len(graph):
        return
    weights = graph.weights("CBS")
    assert np.all(
        ~prune_mask(graph, weights, "RCNP") | prune_mask(graph, weights, "CNP")
    )
    assert np.all(
        ~prune_mask(graph, weights, "RWNP") | prune_mask(graph, weights, "WNP")
    )
