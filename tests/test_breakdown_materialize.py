"""Tests for rebuilding tuned filters from matrix cells via the registry."""

import pytest

from repro.bench.harness import CellResult
from repro.blocking.workflow import BlockingWorkflow
from repro.core import registry
from repro.dense.crosspolytope import CrossPolytopeLSH
from repro.dense.deepblocker import DeepBlocker
from repro.dense.hyperplane import HyperplaneLSH
from repro.dense.knn_search import FaissKNN, ScannKNN
from repro.dense.minhash import MinHashLSH
from repro.sparse.epsilon_join import EpsilonJoin
from repro.sparse.knn_join import KNNJoin


def cell(method, **params):
    return CellResult(
        method=method, dataset="d1", setting="a",
        pc=0.9, pq=0.1, candidates=10, runtime=0.1, feasible=True,
        params=params,
    )


def materialize(method, cell_result):
    return registry.build_filter(method, cell_result.params)


class TestMaterialize:
    def test_blocking_workflow(self):
        filter_ = materialize(
            "SBW", cell("SBW", purging=True, ratio=0.5, cleaner="ARCS+WEP")
        )
        assert isinstance(filter_, BlockingWorkflow)

    def test_epsilon_join(self):
        filter_ = materialize(
            "EJ",
            cell("EJ", threshold=0.4, model="C3G", measure="cosine",
                 cleaning=False),
        )
        assert isinstance(filter_, EpsilonJoin)
        assert filter_.threshold == 0.4

    def test_knn_join(self):
        filter_ = materialize(
            "kNNJ",
            cell("kNNJ", k=2, model="C3G", measure="cosine", cleaning=True,
                 reverse=True),
        )
        assert isinstance(filter_, KNNJoin)
        assert filter_.k == 2
        assert filter_.reverse

    def test_dense_knn_methods(self):
        assert isinstance(
            materialize("FAISS", cell("FAISS", k=3, cleaning=False,
                                      reverse=False)),
            FaissKNN,
        )
        assert isinstance(
            materialize(
                "SCANN",
                cell("SCANN", k=3, cleaning=False, reverse=False,
                     index_type="AH", similarity="dot"),
            ),
            ScannKNN,
        )
        assert isinstance(
            materialize("DB", cell("DB", k=3, cleaning=True, reverse=True)),
            DeepBlocker,
        )

    def test_lsh_methods(self):
        assert isinstance(
            materialize(
                "MH-LSH",
                cell("MH-LSH", bands=32, rows=8, shingle_k=3, cleaning=False),
            ),
            MinHashLSH,
        )
        assert isinstance(
            materialize(
                "HP-LSH",
                cell("HP-LSH", tables=4, hashes=8, probes=4, cleaning=False),
            ),
            HyperplaneLSH,
        )
        assert isinstance(
            materialize(
                "CP-LSH",
                cell("CP-LSH", tables=4, hashes=1, last_cp_dimension=64,
                     probes=4, cleaning=False),
            ),
            CrossPolytopeLSH,
        )

    def test_baselines(self):
        for name in registry.baseline_codes():
            assert materialize(name, cell(name)) is not None

    def test_baseline_params_ignored(self):
        spec = registry.get("PBW")
        assert spec.is_baseline
        assert spec.build_filter({"anything": 1}) is not None

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            materialize("XYZ", cell("XYZ"))
