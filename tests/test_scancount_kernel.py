"""Parity suite: the CSR ScanCount kernel vs the legacy dict path.

Every test pits the vectorized implementation (batched CSR kernel, array
similarities, NumPy selection) against an independent reference: either
:class:`LegacyScanCountIndex` (the pre-CSR dict-of-lists index) or a
direct reimplementation of the original per-query join/sweep loops.  The
join tests require *byte-identical* candidate key arrays, which is what
lets the benchmark tables trust the kernel swap.
"""

import numpy as np
import pytest

from repro.core.candidates import CandidateSet
from repro.core.profile import EntityCollection, EntityProfile
from repro.core.fastpairs import encode_pairs, unique_keys
from repro.sparse.epsilon_join import EpsilonJoin
from repro.sparse.knn_join import KNNJoin, distinct_similarity_ranks
from repro.sparse.scancount import LegacyScanCountIndex, ScanCountIndex
from repro.sparse.similarity import (
    similarity_function,
    vector_similarity_function,
)
from repro.sparse.topk_join import TopKJoin
from repro.text.tokenizers import RepresentationModel


VOCABULARY = [f"tok{i}" for i in range(60)]
OOV = ["oov1", "oov2", "oov3"]


def random_token_sets(rng, count, max_size, extra=(), allow_empty=True):
    """Random frozensets over VOCABULARY (+ optional OOV tokens)."""
    pool = list(VOCABULARY) + list(extra)
    sets = []
    for __ in range(count):
        low = 0 if allow_empty else 1
        size = int(rng.integers(low, max_size + 1))
        sets.append(frozenset(rng.choice(pool, size=size, replace=False)))
    return sets


def overlaps_reference(indexed, query):
    """Ground-truth overlaps computed with plain set intersections."""
    return {
        set_id: len(tokens & query)
        for set_id, tokens in enumerate(indexed)
        if tokens & query
    }


class TestBatchOverlapsParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_parity_with_legacy(self, seed):
        rng = np.random.default_rng(seed)
        indexed = random_token_sets(rng, 40, 12)
        queries = random_token_sets(rng, 30, 12, extra=OOV)
        queries += [frozenset(), frozenset(OOV)]  # empty + fully-OOV
        csr = ScanCountIndex(indexed)
        legacy = LegacyScanCountIndex(indexed)
        query_ptr, set_ids, counts = csr.batch_overlaps(queries)
        assert len(query_ptr) == len(queries) + 1
        for position, query in enumerate(queries):
            expected = legacy.overlaps(query)
            assert expected == overlaps_reference(indexed, query)
            lo, hi = query_ptr[position], query_ptr[position + 1]
            got = dict(
                zip(set_ids[lo:hi].tolist(), counts[lo:hi].tolist())
            )
            assert got == expected
            # set ids ascending within each query slice
            assert np.all(np.diff(set_ids[lo:hi]) > 0)
            # the per-query compat wrapper serves the same dict
            assert csr.overlaps(query) == expected

    def test_singleton_postings(self):
        indexed = [frozenset({"only-here"}), frozenset({"a", "b"})]
        csr = ScanCountIndex(indexed)
        assert csr.overlaps(frozenset({"only-here"})) == {0: 1}
        assert csr.overlaps(frozenset({"a"})) == {1: 1}

    def test_empty_index(self):
        csr = ScanCountIndex([])
        query_ptr, set_ids, counts = csr.batch_overlaps(
            [frozenset({"x"}), frozenset()]
        )
        assert list(query_ptr) == [0, 0, 0]
        assert len(set_ids) == 0 and len(counts) == 0
        assert csr.overlaps(frozenset({"x"})) == {}

    def test_no_queries(self):
        csr = ScanCountIndex([frozenset({"a"})])
        query_ptr, set_ids, counts = csr.batch_overlaps([])
        assert list(query_ptr) == [0]
        assert len(set_ids) == 0

    def test_batch_agrees_with_single_query_calls(self):
        rng = np.random.default_rng(7)
        indexed = random_token_sets(rng, 25, 8)
        queries = random_token_sets(rng, 40, 8, extra=OOV)
        csr = ScanCountIndex(indexed)
        query_ptr, set_ids, counts = csr.batch_overlaps(queries)
        for position, query in enumerate(queries):
            single_ptr, single_ids, single_counts = csr.batch_overlaps(
                [query]
            )
            lo, hi = query_ptr[position], query_ptr[position + 1]
            np.testing.assert_array_equal(single_ids, set_ids[lo:hi])
            np.testing.assert_array_equal(single_counts, counts[lo:hi])
            assert single_ptr[-1] == hi - lo


class TestCSRStorage:
    def test_layout_invariants(self):
        rng = np.random.default_rng(3)
        indexed = random_token_sets(rng, 30, 10, allow_empty=False)
        index = ScanCountIndex(indexed)
        ptr, postings = index.token_ptr, index.postings
        assert ptr[0] == 0 and ptr[-1] == len(postings)
        assert np.all(np.diff(ptr) >= 0)
        assert postings.dtype == np.int32
        for token, token_id in index.vocabulary.items():
            members = postings[ptr[token_id] : ptr[token_id + 1]]
            assert np.all(np.diff(members) > 0)  # ascending, unique
            for set_id in members.tolist():
                assert token in indexed[set_id]

    def test_vocabulary_size_and_len(self):
        index = ScanCountIndex([frozenset({"a", "b"}), frozenset({"b"})])
        assert index.vocabulary_size == 2
        assert len(index) == 2
        assert index.size_of(0) == 2

    def test_sizes_array(self):
        index = ScanCountIndex([frozenset({"a", "b"}), frozenset()])
        np.testing.assert_array_equal(index.sizes, [2, 0])

    def test_postings_attribute_removed(self):
        index = ScanCountIndex([frozenset({"a"})])
        with pytest.raises(AttributeError, match="CSR arrays"):
            index._postings
        with pytest.raises(AttributeError):
            index.definitely_not_an_attribute

    def test_repr_reflects_csr_storage(self):
        index = ScanCountIndex([frozenset({"a", "b"}), frozenset({"b"})])
        text = repr(index)
        assert "csr" in text
        assert "postings=3" in text


# ----------------------------------------------------------------------
# Join parity: byte-identical candidate keys before vs after the kernel.
# ----------------------------------------------------------------------


def make_collections(rng, size_left, size_right):
    """Random word-soup collections (T1G tokens == the words)."""
    words = [f"w{i}" for i in range(30)]

    def build(prefix, size):
        profiles = []
        for i in range(size):
            count = int(rng.integers(1, 7))
            text = " ".join(rng.choice(words, size=count, replace=False))
            profiles.append(EntityProfile(f"{prefix}{i}", {"title": text}))
        return EntityCollection(profiles, name=prefix)

    return build("L", size_left), build("R", size_right)


def token_sets_of(collection, model):
    representation = RepresentationModel(model)
    return [representation.tokens(text) for text in collection.texts(None)]


def keys_of(candidates, width):
    pairs = sorted(candidates.as_frozenset())
    if not pairs:
        return np.zeros(0, dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64)
    return unique_keys(encode_pairs(arr[:, 0], arr[:, 1], width))


def legacy_epsilon_pairs(left_sets, right_sets, threshold, measure):
    index = LegacyScanCountIndex(left_sets)
    func = similarity_function(measure)
    pairs = set()
    for j, query in enumerate(right_sets):
        for i, overlap in index.overlaps(query).items():
            if func(index.size_of(i), len(query), overlap) >= threshold:
                pairs.add((i, j))
    return pairs


def legacy_knn_select(index, query, k, func):
    scored = [
        (func(index.size_of(i), len(query), overlap), i)
        for i, overlap in index.overlaps(query).items()
    ]
    scored.sort(key=lambda item: (-item[0], item[1]))
    selected = []
    distinct_values = 0
    previous = None
    for similarity, set_id in scored:
        if similarity != previous:
            if distinct_values == k:
                break
            distinct_values += 1
            previous = similarity
        selected.append(set_id)
    return selected


def legacy_knn_pairs(left_sets, right_sets, k, measure, reverse):
    indexed, queries = (
        (right_sets, left_sets) if reverse else (left_sets, right_sets)
    )
    index = LegacyScanCountIndex(indexed)
    func = similarity_function(measure)
    pairs = set()
    for query_id, query in enumerate(queries):
        for indexed_id in legacy_knn_select(index, query, k, func):
            if reverse:
                pairs.add((query_id, indexed_id))
            else:
                pairs.add((indexed_id, query_id))
    return pairs


def legacy_topk_pairs(left_sets, right_sets, k, measure):
    import heapq

    index = LegacyScanCountIndex(left_sets)
    func = similarity_function(measure)

    def scored(query):
        return [
            (func(index.size_of(i), len(query), overlap), i)
            for i, overlap in index.overlaps(query).items()
        ]

    heap = []
    for right_id, query in enumerate(right_sets):
        for similarity, left_id in scored(query):
            entry = (similarity, left_id, right_id)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
    pairs = set()
    if heap:
        cutoff = heap[0][0]
        for right_id, query in enumerate(right_sets):
            for similarity, left_id in scored(query):
                if similarity >= cutoff:
                    pairs.add((left_id, right_id))
    return pairs


class TestJoinParity:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("measure", ["cosine", "dice", "jaccard"])
    def test_epsilon_join_byte_identical(self, seed, measure):
        rng = np.random.default_rng(seed)
        left, right = make_collections(rng, 25, 30)
        width = len(right)
        for threshold in (0.05, 0.3, 0.7, 1.0):
            join = EpsilonJoin(
                threshold=threshold, model="T1G", measure=measure
            )
            got = keys_of(join.candidates(left, right), width)
            expected = legacy_epsilon_pairs(
                token_sets_of(left, "T1G"),
                token_sets_of(right, "T1G"),
                threshold,
                measure,
            )
            expected_keys = keys_of(CandidateSet(expected), width)
            assert got.tobytes() == expected_keys.tobytes()
            assert got.dtype == expected_keys.dtype

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("reverse", [False, True])
    def test_knn_join_byte_identical(self, seed, reverse):
        rng = np.random.default_rng(10 + seed)
        left, right = make_collections(rng, 20, 25)
        width = len(right)
        for k, measure, model in [
            (1, "cosine", "T1G"),
            (3, "jaccard", "C3G"),
            (5, "dice", "T1G"),
        ]:
            join = KNNJoin(
                k=k, model=model, measure=measure, reverse=reverse
            )
            got = keys_of(join.candidates(left, right), width)
            expected = legacy_knn_pairs(
                token_sets_of(left, model),
                token_sets_of(right, model),
                k,
                measure,
                reverse,
            )
            expected_keys = keys_of(CandidateSet(expected), width)
            assert got.tobytes() == expected_keys.tobytes()

    @pytest.mark.parametrize("seed", range(3))
    def test_topk_join_byte_identical(self, seed):
        rng = np.random.default_rng(20 + seed)
        left, right = make_collections(rng, 15, 18)
        width = len(right)
        for k, measure in [(1, "cosine"), (5, "jaccard"), (400, "dice")]:
            join = TopKJoin(k=k, model="T1G", measure=measure)
            got = keys_of(join.candidates(left, right), width)
            expected = legacy_topk_pairs(
                token_sets_of(left, "T1G"),
                token_sets_of(right, "T1G"),
                k,
                measure,
            )
            expected_keys = keys_of(CandidateSet(expected), width)
            assert got.tobytes() == expected_keys.tobytes()


class TestVectorSimilarityParity:
    @pytest.mark.parametrize("measure", ["cosine", "dice", "jaccard"])
    def test_bitwise_equal_to_scalar(self, measure):
        rng = np.random.default_rng(5)
        sizes_a = rng.integers(0, 40, size=200)
        sizes_b = rng.integers(0, 40, size=200)
        overlaps = np.minimum(sizes_a, sizes_b)
        overlaps = (overlaps * rng.random(200)).astype(np.int64)
        scalar = similarity_function(measure)
        vector = vector_similarity_function(measure)
        got = vector(sizes_a, sizes_b, overlaps)
        expected = np.array(
            [
                scalar(int(a), int(b), int(o))
                for a, b, o in zip(sizes_a, sizes_b, overlaps)
            ]
        )
        assert got.tobytes() == expected.tobytes()


# ----------------------------------------------------------------------
# Consumer kernels: parity on arbitrary [lo, hi) ranges.
# ----------------------------------------------------------------------


def _consumer_arrays(rng, num_indexed=35, num_queries=35):
    from repro.sparse.kernels import query_tokens

    indexed = random_token_sets(rng, num_indexed, 10)
    queries = random_token_sets(rng, num_queries, 10, extra=OOV)
    queries += [frozenset(), frozenset(OOV)]  # empty + fully-OOV
    index = ScanCountIndex(indexed)
    tokens = query_tokens(index.vocabulary, queries)
    arrays = {**index.arrays(), **tokens.as_arrays()}
    return indexed, queries, arrays


class TestConsumerParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_count_consumer_matches_reference(self, seed):
        from repro.sparse.kernels import run_consumer

        rng = np.random.default_rng(seed)
        indexed, queries, arrays = _consumer_arrays(rng)
        for lo, hi in [(0, len(queries)), (3, 11), (0, 1), (5, 5)]:
            counts = run_consumer(arrays, lo, hi, {"consumer": "count"})
            expected = [
                len(overlaps_reference(indexed, queries[position]))
                for position in range(lo, hi)
            ]
            assert counts.tolist() == expected

    @pytest.mark.parametrize("seed", range(3))
    def test_materialize_consumer_matches_reference(self, seed):
        from repro.sparse.kernels import run_consumer

        rng = np.random.default_rng(10 + seed)
        indexed, queries, arrays = _consumer_arrays(rng)
        for lo, hi in [(0, len(queries)), (2, 9)]:
            ptr, set_ids, counts = run_consumer(
                arrays, lo, hi, {"consumer": "materialize"}
            )
            assert len(ptr) == hi - lo + 1 and ptr[0] == 0
            for position in range(lo, hi):
                a, b = ptr[position - lo], ptr[position - lo + 1]
                got = dict(
                    zip(set_ids[a:b].tolist(), counts[a:b].tolist())
                )
                assert got == overlaps_reference(indexed, queries[position])
                assert np.all(np.diff(set_ids[a:b]) > 0)

    @pytest.mark.parametrize("measure", ["cosine", "dice", "jaccard"])
    @pytest.mark.parametrize("threshold", [0.05, 0.4, 0.8, 1.0])
    def test_epsilon_consumer_matches_reference(self, measure, threshold):
        from repro.sparse.kernels import run_consumer

        rng = np.random.default_rng(hash((measure, threshold)) % 2**32)
        indexed, queries, arrays = _consumer_arrays(rng)
        func = similarity_function(measure)
        for lo, hi in [(0, len(queries)), (4, 13)]:
            query_ids, set_ids = run_consumer(
                arrays,
                lo,
                hi,
                {
                    "consumer": "epsilon",
                    "threshold": threshold,
                    "measure": measure,
                },
            )
            got = set(zip(query_ids.tolist(), set_ids.tolist()))
            expected = {
                (position, set_id)
                for position in range(lo, hi)
                for set_id, overlap in overlaps_reference(
                    indexed, queries[position]
                ).items()
                if func(
                    len(indexed[set_id]), len(queries[position]), overlap
                )
                >= threshold
            }
            assert got == expected

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_knn_consumer_matches_reference(self, k):
        from repro.sparse.kernels import run_consumer

        rng = np.random.default_rng(100 + k)
        indexed, queries, arrays = _consumer_arrays(rng)
        index = LegacyScanCountIndex(indexed)
        func = similarity_function("cosine")
        for lo, hi in [(0, len(queries)), (6, 15)]:
            query_ids, set_ids = run_consumer(
                arrays,
                lo,
                hi,
                {"consumer": "knn", "k": k, "measure": "cosine"},
            )
            got = set(zip(query_ids.tolist(), set_ids.tolist()))
            expected = {
                (position, set_id)
                for position in range(lo, hi)
                for set_id in legacy_knn_select(
                    index, queries[position], k, func
                )
            }
            assert got == expected

    def test_knn_block_boundary_invariance(self):
        from repro.sparse.kernels import knn_kernel

        rng = np.random.default_rng(41)
        __, queries, arrays = _consumer_arrays(rng)
        args = (
            arrays["token_ptr"], arrays["postings"], arrays["sizes"],
            arrays["qt_ptr"], arrays["qt_ids"], arrays["qt_sizes"],
            0, len(queries),
        )
        baseline = knn_kernel(*args, k=3, measure="jaccard")
        for block in (1, 2, 7):
            blocked = knn_kernel(*args, k=3, measure="jaccard", block=block)
            np.testing.assert_array_equal(baseline[0], blocked[0])
            np.testing.assert_array_equal(baseline[1], blocked[1])

    def test_unknown_consumer_rejected(self):
        from repro.sparse.kernels import run_consumer

        rng = np.random.default_rng(0)
        __, __, arrays = _consumer_arrays(rng, 5, 5)
        with pytest.raises(KeyError):
            run_consumer(arrays, 0, 1, {"consumer": "nope"})


class TestMinOverlapBounds:
    @pytest.mark.parametrize("measure", ["cosine", "dice", "jaccard"])
    def test_bound_never_excludes_a_qualifying_pair(self, measure):
        from repro.sparse.kernels import min_overlap_bounds

        func = similarity_function(measure)
        sizes = np.arange(0, 25, dtype=np.int64)
        for threshold in (0.05, 0.1, 0.33, 0.5, 0.75, 0.9, 1.0):
            for query_size in range(0, 25):
                bounds = min_overlap_bounds(
                    measure, threshold, sizes, query_size
                )
                for a in sizes.tolist():
                    for overlap in range(0, min(a, query_size) + 1):
                        if func(a, query_size, overlap) >= threshold:
                            assert overlap >= bounds[a], (
                                measure, threshold, a, query_size, overlap
                            )

    def test_bound_is_at_least_one(self):
        from repro.sparse.kernels import min_overlap_bounds

        bounds = min_overlap_bounds(
            "cosine", 0.01, np.arange(10, dtype=np.int64), 3
        )
        assert bounds.min() >= 1


class TestRanksOfGroupedRows:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_three_key_lexsort_on_grouped_input(self, seed):
        from repro.sparse.kernels import ranks_of_grouped_rows

        rng = np.random.default_rng(seed)
        # Grouped rows: query ids non-decreasing, set ids ascending
        # within each query — exactly the CSR layout kernels emit.
        query_parts, set_parts = [], []
        for query in range(8):
            rows = int(rng.integers(0, 12))
            members = np.sort(
                rng.choice(40, size=rows, replace=False)
            ).astype(np.int64)
            query_parts.append(np.full(rows, query, dtype=np.int64))
            set_parts.append(members)
        query_ids = np.concatenate(query_parts)
        set_ids = np.concatenate(set_parts)
        sims = rng.choice([0.2, 0.4, 0.6, 0.8, 1.0], size=len(query_ids))
        order2, ranks2 = ranks_of_grouped_rows(query_ids, sims)
        order3, ranks3 = distinct_similarity_ranks(query_ids, set_ids, sims)
        np.testing.assert_array_equal(order2, order3)
        np.testing.assert_array_equal(ranks2, ranks3)

    def test_empty(self):
        from repro.sparse.kernels import ranks_of_grouped_rows

        empty = np.zeros(0, dtype=np.int64)
        order, ranks = ranks_of_grouped_rows(empty, empty)
        assert len(order) == 0 and len(ranks) == 0


class TestDistinctSimilarityRanks:
    def test_against_python_reference(self):
        rng = np.random.default_rng(11)
        rows = 300
        query_ids = np.sort(rng.integers(0, 12, size=rows))
        set_ids_raw = rng.integers(0, 40, size=rows)
        # Deduplicate (query, set) rows as batch_overlaps guarantees.
        keys = query_ids * 1000 + set_ids_raw
        __, first = np.unique(keys, return_index=True)
        query_ids = query_ids[first]
        set_ids = set_ids_raw[first]
        sims = rng.choice([0.1, 0.25, 0.5, 0.75, 1.0], size=len(first))
        order, ranks = distinct_similarity_ranks(query_ids, set_ids, sims)
        for row_position, rank in zip(order.tolist(), ranks.tolist()):
            query = query_ids[row_position]
            mine = sims[row_position]
            within = sims[query_ids == query]
            expected_rank = len(np.unique(within[within >= mine]))
            assert rank == expected_rank

    def test_empty(self):
        empty = np.zeros(0, dtype=np.int64)
        order, ranks = distinct_similarity_ranks(empty, empty, empty)
        assert len(order) == 0 and len(ranks) == 0
