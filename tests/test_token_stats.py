"""Tests for the token-statistics layer behind cost-based tuning."""

from __future__ import annotations

import json

import pytest

from repro.core.groundtruth import GroundTruth
from repro.core.profile import EntityCollection, EntityProfile
from repro.datasets import stats as stats_module
from repro.datasets.generator import DatasetSpec, ERDataset
from repro.datasets.stats import (
    TokenStats,
    TokenStatsCache,
    attribute_stats,
    compute_token_stats,
    select_best_attribute,
)
from repro.text.tokenizers import word_tokens
from repro.tuning.auto import AutoKNNConfigurator


def make_dataset(name, left_attrs, right_attrs, gt_pairs):
    """A hand-built ERDataset from per-entity attribute dicts."""
    left = EntityCollection(
        [EntityProfile(f"a{i}", attrs) for i, attrs in enumerate(left_attrs)],
        name="left",
    )
    right = EntityCollection(
        [EntityProfile(f"b{i}", attrs) for i, attrs in enumerate(right_attrs)],
        name="right",
    )
    spec = DatasetSpec(
        name=name,
        domain="product",
        size1=len(left_attrs),
        size2=len(right_attrs),
        duplicates=len(gt_pairs),
        seed=1,
    )
    return ERDataset(
        spec=spec, left=left, right=right, groundtruth=GroundTruth(gt_pairs)
    )


class TestAttributeSelection:
    def test_score_tie_breaks_alphabetically(self):
        # "alpha" and "beta" carry identical values on every profile, so
        # coverage and distinctiveness tie exactly; the sort's secondary
        # key must make the selection deterministic.
        dataset = make_dataset(
            "",
            [{"alpha": "x1", "beta": "x1"}, {"alpha": "y2", "beta": "y2"}],
            [{"alpha": "x1", "beta": "x1"}],
            [(0, 0)],
        )
        ranked = attribute_stats(dataset)
        assert ranked[0].score == ranked[1].score
        assert select_best_attribute(dataset) == "alpha"

    def test_fully_missing_attribute_scores_zero(self):
        # "ghost" appears in the schema of one entity only, with no
        # usable coverage elsewhere; a populated attribute must win.
        dataset = make_dataset(
            "",
            [{"title": "sonacore laptop", "ghost": ""},
             {"title": "veltron mouse"}],
            [{"title": "sonacore laptop"}],
            [(0, 0)],
        )
        by_name = {s.attribute: s for s in attribute_stats(dataset)}
        assert by_name["ghost"].score < by_name["title"].score
        assert select_best_attribute(dataset) == "title"

    def test_no_attributes_raises(self):
        dataset = make_dataset("", [{}], [{}], [])
        with pytest.raises(ValueError):
            select_best_attribute(dataset)


class TestComputeTokenStats:
    def test_empty_collections(self):
        stats = compute_token_stats([], [], [], model="T1G")
        assert stats.num_left == 0 and stats.num_right == 0
        assert stats.comparison_space == 0
        assert stats.df_product_sum == 0
        assert stats.mean_key_length == 0.0
        assert stats.pc_upper_bound == 0.0
        assert stats.gt_overlapping == 0
        assert stats.mass_curve == ()

    def test_all_empty_texts(self):
        stats = compute_token_stats(["", ""], [""], [(0, 0)], model="T1G")
        assert stats.shared_vocabulary == 0
        assert stats.key_occurrences == 0
        # Non-empty-set extremes default to the (1, 0) sentinels.
        assert stats.min_size_left == 1
        assert stats.max_size_left == 0
        assert stats.gt_overlapping == 0

    def test_groundtruth_triples_match_token_sets(self):
        left = ["red apple pie", "blue car"]
        right = ["red apple tart", "green bike"]
        stats = compute_token_stats(
            left, right, [(0, 0), (1, 1)], model="T1G"
        )
        assert stats.gt_sizes_left == (3, 2)
        assert stats.gt_sizes_right == (3, 2)
        assert stats.gt_overlaps == (2, 0)
        assert stats.gt_overlapping == 1
        assert stats.pc_upper_bound == 0.5

    def test_json_roundtrip_is_lossless(self):
        stats = compute_token_stats(
            ["alpha beta", "beta gamma"],
            ["beta delta"],
            [(0, 0)],
            model="T1G",
            dataset="tiny",
            attribute="title",
        )
        payload = json.loads(json.dumps(stats.to_payload()))
        assert TokenStats.from_payload(payload) == stats

    def test_from_payload_rejects_garbage(self):
        assert TokenStats.from_payload(None) is None
        assert TokenStats.from_payload({"dataset": "x"}) is None


class TestTokenStatsCache:
    def _dataset(self, name="cache-ds", duplicates=2):
        pairs = [(0, 0), (1, 1)][:duplicates]
        return make_dataset(
            name,
            [{"title": "sonacore ultra laptop"},
             {"title": "veltron compact mouse"}],
            [{"title": "sonacore ultra laptop pro"},
             {"title": "veltron compact mouse"}],
            pairs,
        )

    def test_disk_roundtrip(self, tmp_path, monkeypatch):
        path = tmp_path / "token_stats.json"
        first = TokenStatsCache(path)
        original = first.for_dataset(self._dataset(), "title", model="T1G")
        assert path.exists()

        # A fresh cache instance must serve the entry from disk without
        # recomputing anything.
        monkeypatch.setattr(
            stats_module,
            "compute_token_stats",
            lambda *a, **k: pytest.fail("disk entry was not reused"),
        )
        second = TokenStatsCache(path)
        assert second.for_dataset(self._dataset(), "title", model="T1G") == (
            original
        )

    def test_fingerprint_invalidation(self, tmp_path):
        path = tmp_path / "token_stats.json"
        cache = TokenStatsCache(path)
        full = cache.for_dataset(self._dataset(), "title", model="T1G")
        # Same name/attribute/model but a drifted groundtruth: the
        # (num_left, num_right, num_duplicates) fingerprint must force a
        # recomputation instead of serving the stale entry.
        drifted = TokenStatsCache(path).for_dataset(
            self._dataset(duplicates=1), "title", model="T1G"
        )
        assert full.num_duplicates == 2
        assert drifted.num_duplicates == 1

    def test_corrupt_file_is_ignored(self, tmp_path):
        path = tmp_path / "token_stats.json"
        path.write_text("{ not json")
        cache = TokenStatsCache(path)
        stats = cache.for_dataset(self._dataset(), "title", model="T1G")
        assert stats.num_left == 2
        cache.save()
        assert json.loads(path.read_text())["schema"] == (
            TokenStatsCache.SCHEMA
        )

    def test_adhoc_collections_stay_off_disk(self, tmp_path):
        path = tmp_path / "token_stats.json"
        cache = TokenStatsCache(path)
        cache.for_texts(["a b"], ["a c"], [], model="T1G")
        assert not path.exists()


class TestAutoConfiguratorRegression:
    """Satellite check: choose_model now rides the shared statistics."""

    def test_mean_matches_inline_tokenization(self, small_generated):
        for attribute in (None, small_generated.key_attribute):
            lengths = []
            for collection in (small_generated.left, small_generated.right):
                for text in collection.texts(attribute):
                    lengths.extend(len(t) for t in word_tokens(text))
            expected = sum(lengths) / len(lengths)
            stats = stats_module.shared_stats_cache().for_texts(
                small_generated.left.texts(attribute),
                small_generated.right.texts(attribute),
                gt_pairs=(),
                model="T1G",
                cleaning=False,
            )
            assert stats.mean_key_length == expected

    def test_choose_model_matches_old_rule(self, small_generated):
        lengths = []
        for collection in (small_generated.left, small_generated.right):
            for text in collection.texts(None):
                lengths.extend(len(t) for t in word_tokens(text))
        mean = sum(lengths) / len(lengths)
        if mean >= 8.0:
            expected = "T1GM"
        elif mean >= 6.0:
            expected = "C5GM"
        else:
            expected = "C3GM"
        assert AutoKNNConfigurator.choose_model(
            small_generated.left, small_generated.right
        ) == expected
