"""Cost-ordered grid search: cheap-first evaluation, identical winners."""

from repro.core.candidates import CandidateSet
from repro.core.filters import Filter
from repro.core.optimizer import GridSearchOptimizer
from repro.dense.minhash import MinHashLSH
from repro.tuning.dense import LSHTuner


class FakeFilter(Filter):
    """Returns a canned candidate set; used to script exact outcomes."""

    name = "fake"

    def __init__(self, pairs):
        super().__init__()
        self._pairs = list(pairs)

    def _run(self, left, right, attribute):
        return CandidateSet(self._pairs)


def _winner_fields(result):
    return (result.params, result.pc, result.pq, result.candidates,
            result.feasible)


class TestCostOrdering:
    def _scripted_search(self, tiny_dataset, cost, should_prune=None):
        gt = sorted(tiny_dataset.groundtruth)
        outcomes = {
            # Infeasible: one duplicate found, tiny candidate set.
            1: [gt[0]],
            # Feasible, diluted: all duplicates + noise pairs.
            2: gt + [(0, 3), (3, 0), (1, 3)],
            # Feasible, perfect PQ — the winner.
            3: list(gt),
            # Exact quality tie with config 3 (same PQ, same PC).
            4: list(gt),
        }
        optimizer = GridSearchOptimizer(target_recall=0.6)
        return optimizer.search(
            [{"id": i} for i in sorted(outcomes)],
            lambda id: FakeFilter(outcomes[id]),
            tiny_dataset,
            cost=cost,
            should_prune=should_prune,
        )

    def test_scripted_winner_identical_with_and_without_cost(
        self, tiny_dataset
    ):
        plain = self._scripted_search(tiny_dataset, cost=None)
        # Reversed cost order: the tied config 4 is evaluated before 3.
        reordered = self._scripted_search(
            tiny_dataset, cost=lambda config: -config["id"]
        )
        assert _winner_fields(plain) == _winner_fields(reordered)
        # Enumeration-order semantics: the FIRST of the tied maximal
        # configurations wins, even though cost order saw 4 first.
        assert plain.params == {"id": 3}
        assert reordered.params == {"id": 3}

    def test_cost_order_with_sound_prune_rule_keeps_winner(
        self, tiny_dataset
    ):
        def should_prune(config, best):
            # Sound rule: nothing strictly beats a feasible PQ=1 incumbent.
            return best.feasible and best.pq == 1.0

        plain = self._scripted_search(tiny_dataset, cost=None)
        # Cost order evaluates the winner (3) first; configs 1 and 2
        # precede it in enumeration order so the index guard forces
        # their evaluation, while the tied config 4 follows it and is
        # legitimately pruned.
        pruned = self._scripted_search(
            tiny_dataset,
            cost=lambda config: 0 if config["id"] == 3 else config["id"],
            should_prune=should_prune,
        )
        assert _winner_fields(plain) == _winner_fields(pruned)
        assert pruned.configurations_pruned == 1
        assert pruned.configurations_tried == 3
        assert pruned.configurations_enumerated == 4

    def test_earlier_index_never_pruned_even_when_tied(self, tiny_dataset):
        # A rule that would prune config 3 as "cannot strictly beat the
        # tied incumbent 4" must not fire: 3 precedes the incumbent in
        # enumeration order, so it is evaluated and takes the win.
        def should_prune(config, best):
            return best.feasible and best.pq == 1.0

        result = self._scripted_search(
            tiny_dataset,
            cost=lambda config: -config["id"],
            should_prune=should_prune,
        )
        assert result.params == {"id": 3}

    def test_minhash_grid_winner_unchanged_by_cost_order(self, tiny_dataset):
        # The real stochastic filter: evaluation reseeds deterministically,
        # so enumeration order and cheap-first order must pick the same
        # winner, field for field.
        grid = [
            {"bands": 32, "rows": 2, "shingle_k": 3},
            {"bands": 8, "rows": 16, "shingle_k": 3},
            {"bands": 16, "rows": 4, "shingle_k": 5},
        ]
        tuner = LSHTuner("mh-lsh", target_recall=0.5)

        def run(cost):
            return GridSearchOptimizer(
                target_recall=0.5, repetitions=2
            ).search(
                list(grid),
                lambda **config: MinHashLSH(**config),
                tiny_dataset,
                cost=cost,
            )

        plain = run(None)
        ordered = run(tuner._config_cost)
        assert _winner_fields(plain) == _winner_fields(ordered)

    def test_lsh_cost_heuristics_rank_sensibly(self):
        mh = LSHTuner("mh-lsh")
        assert mh._config_cost(
            {"bands": 8, "rows": 2, "shingle_k": 3, "cleaning": False}
        ) < mh._config_cost(
            {"bands": 64, "rows": 8, "shingle_k": 3, "cleaning": False}
        )
        assert mh._config_cost(
            {"bands": 8, "rows": 2, "shingle_k": 3, "cleaning": False}
        ) < mh._config_cost(
            {"bands": 8, "rows": 2, "shingle_k": 3, "cleaning": True}
        )
        hp = LSHTuner("hp-lsh")
        assert hp._config_cost(
            {"tables": 8, "hashes": 10, "probes": 8, "cleaning": False}
        ) < hp._config_cost(
            {"tables": 32, "hashes": 16, "probes": 128, "cleaning": False}
        )
        cp = LSHTuner("cp-lsh")
        assert cp._config_cost(
            {"tables": 8, "hashes": 1, "last_cp_dimension": 512,
             "probes": 8, "cleaning": False}
        ) < cp._config_cost(
            {"tables": 32, "hashes": 2, "last_cp_dimension": 512,
             "probes": 64, "cleaning": False}
        )
