"""Cross-checks between implementations and brute-force references."""

import numpy as np
import pytest

from repro.core.profile import EntityCollection, EntityProfile
from repro.dense.embeddings import HashedNGramEmbedder
from repro.dense.knn_search import FaissKNN
from repro.sparse.knn_join import KNNJoin
from repro.sparse.scancount import ScanCountIndex
from repro.sparse.similarity import set_similarity
from repro.text.tokenizers import RepresentationModel


def brute_force_knn_join(left_texts, right_texts, k, model, measure):
    """Reference kNN join: full pairwise similarities, distinct-value
    tie rule."""
    representation = RepresentationModel(model)
    left_sets = [representation.tokens(t) for t in left_texts]
    right_sets = [representation.tokens(t) for t in right_texts]
    pairs = set()
    for j, query in enumerate(right_sets):
        scored = sorted(
            (
                (set_similarity(left_sets[i], query, measure), i)
                for i in range(len(left_sets))
                if left_sets[i] & query
            ),
            key=lambda item: (-item[0], item[1]),
        )
        distinct = 0
        previous = None
        for similarity, i in scored:
            if similarity != previous:
                if distinct == k:
                    break
                distinct += 1
                previous = similarity
            pairs.add((i, j))
    return pairs


class TestKNNJoinParity:
    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("measure", ["cosine", "jaccard"])
    def test_matches_brute_force(self, small_generated, k, measure):
        join = KNNJoin(k=k, model="C3G", measure=measure)
        fast = join.candidates(small_generated.left, small_generated.right)
        reference = brute_force_knn_join(
            small_generated.left.texts(),
            small_generated.right.texts(),
            k,
            "C3G",
            measure,
        )
        assert fast.as_frozenset() == frozenset(reference)


class TestScanCountParity:
    def test_overlap_counts_match_set_intersections(self, small_generated):
        model = RepresentationModel("C3G")
        left_sets = [model.tokens(t) for t in small_generated.left.texts()]
        index = ScanCountIndex(left_sets)
        for text in small_generated.right.texts()[:20]:
            query = model.tokens(text)
            overlaps = index.overlaps(query)
            for i, left_set in enumerate(left_sets):
                expected = len(left_set & query)
                assert overlaps.get(i, 0) == expected


class TestFaissParity:
    def test_matches_manual_distance_computation(self):
        left = EntityCollection(
            [EntityProfile(f"l{i}", {"t": text}) for i, text in enumerate(
                ["alpha beta", "gamma delta", "epsilon zeta", "eta theta"]
            )]
        )
        right = EntityCollection(
            [EntityProfile("r0", {"t": "alpha beta"}),
             EntityProfile("r1", {"t": "gamma delta epsilon"})]
        )
        embedder = HashedNGramEmbedder()
        knn = FaissKNN(k=1, embedder=embedder)
        candidates = knn.candidates(left, right)
        left_vectors = embedder.embed_texts(left.texts())
        right_vectors = embedder.embed_texts(right.texts())
        for j, query in enumerate(right_vectors):
            distances = np.linalg.norm(left_vectors - query, axis=1)
            best = int(np.argmin(distances))
            assert (best, j) in candidates
