"""Fidelity of the full-profile grids to the paper's Tables III and IV.

The paper reports "Maximum Configurations" per method; the full profile
must reproduce those counts (up to the paper's off-by-one rounding of
the 101-point threshold grid).
"""

import pytest

from repro.blocking.metablocking import PRUNING_ALGORITHMS, WEIGHTING_SCHEMES
from repro.tuning import spaces


def cleaning_configs() -> int:
    """CP or one of the 6 x 7 Meta-blocking configurations."""
    return 1 + len(WEIGHTING_SCHEMES) * len(PRUNING_ALGORITHMS)


class TestTableIII:
    def test_comparison_cleaning_options(self):
        assert cleaning_configs() == 43

    def test_standard_blocking_3440(self):
        # BP (2) x BFr (40) x cleaning (43) = 3,440.
        ratios = len(spaces.block_filtering_ratios("full"))
        assert ratios == 40
        assert 2 * ratios * cleaning_configs() == 3440

    def test_qgrams_blocking_17200(self):
        builders = len(spaces.builder_grid("qgrams", "full"))
        assert builders == 5  # q in [2, 6]
        assert builders * 2 * 40 * cleaning_configs() == 17200

    def test_extended_qgrams_68800(self):
        builders = len(spaces.builder_grid("extended-qgrams", "full"))
        assert builders == 20  # q in [2,6] x t in {0.8,...,0.95}
        assert builders * 2 * 40 * cleaning_configs() == 68800

    def test_suffix_arrays_21285(self):
        # l_min (5) x b_max (99) x cleaning (43) = 21,285 — proactive
        # workflows skip block cleaning.
        builders = len(spaces.builder_grid("suffix-arrays", "full"))
        assert builders == 5 * 99
        assert builders * cleaning_configs() == 21285


class TestTableIV:
    def test_epsilon_join_about_6000(self):
        # CL (2) x SM (3) x RM (10) x thresholds (~100) ~ 6,000.
        thresholds = len(spaces.epsilon_thresholds("full"))
        assert 100 <= thresholds <= 101
        count = 2 * 3 * 10 * thresholds
        assert 6000 <= count <= 6060

    def test_knn_join_12000(self):
        # CL (2) x RVS (2) x SM (3) x RM (10) x K (100) = 12,000.
        ks = len(spaces.knn_k_values("full"))
        assert ks == 100
        assert 2 * 2 * 3 * 10 * ks == 12000

    def test_representation_models_complete(self):
        assert len(spaces.representation_models("full")) == 10

    def test_similarity_measures_complete(self):
        assert set(spaces.similarity_measures("full")) == {
            "cosine", "dice", "jaccard",
        }


class TestTableV:
    def test_minhash_band_layouts(self):
        grid = spaces.minhash_grid("full")
        layouts = {(c["bands"], c["rows"]) for c in grid}
        for bands, rows in layouts:
            # Powers of two with products in {128, 256, 512}.
            assert bands & (bands - 1) == 0
            assert rows & (rows - 1) == 0
            assert bands * rows in (128, 256, 512)

    def test_dense_k_values_reach_5000(self):
        values = spaces.dense_k_values("full")
        assert values[0] == 1
        assert values[-1] == 5000
        assert 100 in values
