"""Tests for the unsupervised (label-free) kNN-Join configurator."""

import pytest

from repro.core.metrics import evaluate_candidates
from repro.core.profile import EntityCollection, EntityProfile
from repro.tuning.auto import AutoKNNConfigurator


class TestParameters:
    def test_validates_quantile(self):
        with pytest.raises(ValueError):
            AutoKNNConfigurator(quantile=0.0)

    def test_validates_max_k(self):
        with pytest.raises(ValueError):
            AutoKNNConfigurator(max_k=0)


class TestModelChoice:
    def test_short_tokens_choose_char_grams(self):
        left = EntityCollection(
            [EntityProfile("a", {"t": "ab cd ef gh"})]
        )
        right = EntityCollection(
            [EntityProfile("b", {"t": "ab cd xx yy"})]
        )
        model = AutoKNNConfigurator.choose_model(left, right)
        assert model == "C3GM"

    def test_long_tokens_choose_whole_tokens(self):
        left = EntityCollection(
            [EntityProfile("a", {"t": "extraordinary probabilistic databases"})]
        )
        right = EntityCollection(
            [EntityProfile("b", {"t": "incremental aggregation pipelines"})]
        )
        model = AutoKNNConfigurator.choose_model(left, right)
        assert model == "T1GM"

    def test_empty_collections_default(self):
        left = EntityCollection([EntityProfile("a", {})])
        right = EntityCollection([EntityProfile("b", {})])
        assert AutoKNNConfigurator.choose_model(left, right) == "C5GM"


class TestEstimateK:
    def test_clear_gap_gives_small_k(self):
        # Every query overlaps one indexed set strongly, others weakly.
        indexed = [frozenset({"a", "b", "c"}), frozenset({"a", "x", "y"}),
                   frozenset({"a", "p", "q"})]
        queries = [frozenset({"a", "b", "c"})] * 5
        configurator = AutoKNNConfigurator(sample_size=5)
        assert configurator.estimate_k(indexed, queries) == 1

    def test_empty_queries(self):
        configurator = AutoKNNConfigurator()
        assert configurator.estimate_k([frozenset({"a"})], []) == 1

    def test_k_bounded(self):
        configurator = AutoKNNConfigurator(max_k=5)
        indexed = [frozenset({str(i)}) for i in range(10)]
        queries = [frozenset({"0", "1", "2"})] * 3
        assert 1 <= configurator.estimate_k(indexed, queries) <= 5


class TestEndToEnd:
    def test_auto_config_reaches_good_recall(self, small_generated):
        join = AutoKNNConfigurator().configure_for(small_generated)
        candidates = join.candidates(
            small_generated.left, small_generated.right
        )
        evaluation = evaluate_candidates(
            candidates,
            small_generated.groundtruth,
            len(small_generated.left),
            len(small_generated.right),
        )
        assert evaluation.pc >= 0.75
        assert evaluation.pq > 0.1

    def test_queries_smaller_side(self, small_generated):
        join = AutoKNNConfigurator().configure_for(small_generated)
        assert join.reverse  # |E1| < |E2| in the fixture

    def test_deterministic(self, small_generated):
        a = AutoKNNConfigurator().configure_for(small_generated)
        b = AutoKNNConfigurator().configure_for(small_generated)
        assert (a.k, a.model.code, a.reverse) == (b.k, b.model.code, b.reverse)
