"""Unit tests for the blocking workflow filter and its baselines."""

import pytest

from repro.blocking.building import StandardBlocking
from repro.blocking.metablocking import MetaBlocking
from repro.blocking.workflow import (
    BlockingWorkflow,
    default_workflow,
    parameter_free_workflow,
)
from repro.core.metrics import pair_completeness


class TestBlockingWorkflow:
    def test_basic_run(self, left_collection, right_collection, groundtruth):
        workflow = BlockingWorkflow(StandardBlocking())
        candidates = workflow.candidates(left_collection, right_collection)
        assert pair_completeness(candidates, groundtruth) == 1.0

    def test_phase_timer_records_steps(self, left_collection, right_collection):
        workflow = BlockingWorkflow(
            StandardBlocking(), purging=True, filtering_ratio=0.5
        )
        workflow.candidates(left_collection, right_collection)
        phases = workflow.timer.as_dict()
        assert set(phases) == {"build", "purge", "filter", "clean"}
        assert all(v >= 0 for v in phases.values())

    def test_optional_steps_omitted_from_timer(
        self, left_collection, right_collection
    ):
        workflow = BlockingWorkflow(StandardBlocking())
        workflow.candidates(left_collection, right_collection)
        assert set(workflow.timer.as_dict()) == {"build", "clean"}

    def test_filtering_ratio_one_disables_step(self):
        workflow = BlockingWorkflow(StandardBlocking(), filtering_ratio=1.0)
        assert workflow.filtering is None

    def test_metablocking_cleaner(self, left_collection, right_collection):
        workflow = BlockingWorkflow(
            StandardBlocking(), cleaner=MetaBlocking("CBS", "WEP")
        )
        candidates = workflow.candidates(left_collection, right_collection)
        assert len(candidates) > 0

    def test_schema_based_setting(self, left_collection, right_collection):
        workflow = BlockingWorkflow(StandardBlocking())
        agnostic = workflow.candidates(left_collection, right_collection)
        based = workflow.candidates(left_collection, right_collection, "title")
        # Schema-based considers less text, so no more candidates.
        assert len(based) <= len(agnostic)

    def test_describe_lists_steps(self):
        workflow = BlockingWorkflow(
            StandardBlocking(), purging=True, filtering_ratio=0.5
        )
        description = workflow.describe()
        assert "standard" in description
        assert "block-purging" in description
        assert "block-filtering" in description

    def test_not_stochastic(self):
        assert not BlockingWorkflow(StandardBlocking()).is_stochastic


class TestBaselines:
    def test_pbw_components(self):
        workflow = parameter_free_workflow()
        assert isinstance(workflow.builder, StandardBlocking)
        assert workflow.purging is not None
        assert workflow.filtering is None

    def test_pbw_high_recall(self, small_generated):
        workflow = parameter_free_workflow()
        candidates = workflow.candidates(
            small_generated.left, small_generated.right
        )
        assert pair_completeness(candidates, small_generated.groundtruth) >= 0.9

    def test_dbw_components(self):
        workflow = default_workflow()
        assert workflow.builder.q == 6
        assert workflow.filtering is not None
        assert workflow.filtering.ratio == 0.5
        assert isinstance(workflow.cleaner, MetaBlocking)
        assert workflow.cleaner.scheme == "ECBS"
        assert workflow.cleaner.pruning == "WEP"

    def test_dbw_runs(self, small_generated):
        candidates = default_workflow().candidates(
            small_generated.left, small_generated.right
        )
        assert len(candidates) > 0

    def test_deterministic_across_runs(self, small_generated):
        workflow = parameter_free_workflow()
        first = workflow.candidates(small_generated.left, small_generated.right)
        second = workflow.candidates(small_generated.left, small_generated.right)
        assert first == second
