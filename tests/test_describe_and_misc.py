"""Targeted tests: describe() strings, serialization, misc edge cases."""

import numpy as np
import pytest

from repro.bench.harness import CellResult, SettingKey
from repro.blocking.building import (
    ExtendedQGramsBlocking,
    QGramsBlocking,
    StandardBlocking,
    SuffixArraysBlocking,
)
from repro.dense.crosspolytope import CrossPolytopeLSH
from repro.dense.embeddings import HashedNGramEmbedder
from repro.dense.hyperplane import HyperplaneLSH
from repro.dense.knn_search import FaissKNN, ScannKNN
from repro.dense.minhash import MinHashLSH
from repro.sparse.epsilon_join import EpsilonJoin
from repro.sparse.knn_join import KNNJoin
from repro.tuning import spaces
from repro.tuning.result import TunedResult


class TestDescribeStrings:
    """describe() renders the full configuration — used in every table."""

    def test_builders(self):
        assert StandardBlocking().describe() == "standard"
        assert "q=4" in QGramsBlocking(4).describe()
        assert "t=0.9" in ExtendedQGramsBlocking(3, 0.9).describe()
        assert "b_max=50" in SuffixArraysBlocking(3, 50).describe()

    def test_sparse_filters(self):
        join = EpsilonJoin(0.42, model="C3G", measure="dice", cleaning=True)
        description = join.describe()
        assert "C3G" in description
        assert "dice" in description
        assert "0.42" in description
        assert "clean" in description

    def test_knn_join_flags(self):
        join = KNNJoin(k=7, model="T1G", reverse=True)
        description = join.describe()
        assert "k=7" in description
        assert "rvs" in description

    def test_dense_filters(self):
        assert "k=3" in FaissKNN(k=3).describe()
        assert "AH" in ScannKNN(k=1, index_type="AH").describe()
        assert "bands=16" in MinHashLSH(bands=16, rows=8).describe()
        assert "L=4" in HyperplaneLSH(tables=4).describe()
        assert "cp=None" in CrossPolytopeLSH(tables=2).describe()


class TestSettingKeySerialization:
    def test_as_string_roundtrip_shape(self):
        key = SettingKey("kNNJ", "d7", "a")
        assert key.as_string() == "kNNJ|d7|a"

    def test_cell_result_from_tuned_jsonable(self):
        result = TunedResult(
            method="x",
            params={"k": 3, "flag": True, "obj": object()},
            pc=0.9,
            pq=0.5,
            candidates=10,
            runtime=0.1,
            feasible=True,
        )
        cell = CellResult.from_tuned(SettingKey("x", "d1", "a"), result)
        assert cell.params["k"] == 3
        assert cell.params["flag"] is True
        assert isinstance(cell.params["obj"], str)  # stringified


class TestEmbeddingInternals:
    def test_boundary_markers_in_ngrams(self):
        embedder = HashedNGramEmbedder(dim=8)
        grams = embedder._token_ngrams("ab")
        assert "<ab" in grams or "<ab>" in grams

    def test_very_short_token_fallback(self):
        embedder = HashedNGramEmbedder(dim=8, ngram_range=(5, 6))
        grams = embedder._token_ngrams("a")
        assert grams == ["<a>"]

    def test_token_cache_grows_once(self):
        embedder = HashedNGramEmbedder(dim=8)
        embedder.embed_text("alpha beta")
        size = len(embedder._token_cache)
        embedder.embed_text("alpha beta")
        assert len(embedder._token_cache) == size

    def test_unnormalized_mode(self):
        embedder = HashedNGramEmbedder(dim=16, normalize=False)
        vector = embedder.embed_text("hello world")
        assert not np.isclose(np.linalg.norm(vector), 1.0)


class TestDenseKValues:
    def test_fast_values_ascending_unique(self):
        values = spaces.dense_k_values("fast")
        assert values == sorted(set(values))
        assert values[0] == 1

    def test_full_covers_paper_ranges(self):
        values = spaces.dense_k_values("full")
        assert 100 in values
        assert 1000 in values
        assert 5000 in values

    def test_epsilon_thresholds_descend(self):
        thresholds = spaces.epsilon_thresholds("fast")
        assert thresholds == sorted(thresholds, reverse=True)
        assert thresholds[0] == 1.0


class TestLSHGridShapes:
    def test_hyperplane_grid_keys(self):
        for config in spaces.hyperplane_grid("fast"):
            assert {"tables", "hashes", "probes", "cleaning"} == set(config)

    def test_crosspolytope_grid_keys(self):
        for config in spaces.crosspolytope_grid("fast"):
            assert {
                "tables", "hashes", "last_cp_dimension", "probes", "cleaning"
            } == set(config)

    def test_grids_instantiate(self):
        for config in spaces.minhash_grid("fast")[:4]:
            MinHashLSH(**config)
        for config in spaces.hyperplane_grid("fast")[:4]:
            HyperplaneLSH(**config)
        for config in spaces.crosspolytope_grid("fast")[:4]:
            CrossPolytopeLSH(**config)
