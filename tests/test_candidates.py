"""Unit tests for CandidateSet and GroundTruth."""

import pytest

from repro.core.candidates import CandidateSet
from repro.core.groundtruth import GroundTruth
from repro.core.profile import EntityCollection, EntityProfile


class TestCandidateSet:
    def test_deduplicates(self):
        candidates = CandidateSet([(0, 1), (0, 1), (1, 2)])
        assert len(candidates) == 2

    def test_add_and_contains(self):
        candidates = CandidateSet()
        candidates.add(3, 4)
        assert (3, 4) in candidates
        assert (4, 3) not in candidates

    def test_pairs_are_ordered(self):
        candidates = CandidateSet([(1, 0)])
        assert (1, 0) in candidates
        assert (0, 1) not in candidates

    def test_update(self):
        candidates = CandidateSet()
        candidates.update([(0, 0), (1, 1)])
        assert len(candidates) == 2

    def test_coerces_to_int(self):
        import numpy as np

        candidates = CandidateSet([(np.int64(1), np.int64(2))])
        assert (1, 2) in candidates

    def test_equality(self):
        assert CandidateSet([(0, 1)]) == CandidateSet([(0, 1)])
        assert CandidateSet([(0, 1)]) != CandidateSet([(1, 0)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(CandidateSet())

    def test_as_frozenset(self):
        snapshot = CandidateSet([(0, 1)]).as_frozenset()
        assert snapshot == frozenset({(0, 1)})

    def test_intersection_size(self):
        a = CandidateSet([(0, 0), (1, 1), (2, 2)])
        b = CandidateSet([(1, 1), (3, 3)])
        assert a.intersection_size(b) == 1

    def test_union(self):
        a = CandidateSet([(0, 0)])
        b = CandidateSet([(1, 1)])
        assert len(a.union(b)) == 2


class TestGroundTruth:
    def test_len_and_contains(self, groundtruth):
        assert len(groundtruth) == 3
        assert (0, 0) in groundtruth
        assert (0, 1) not in groundtruth

    def test_matches_of_left(self, groundtruth):
        assert groundtruth.matches_of_left(1) == [1]
        assert groundtruth.matches_of_left(99) == []

    def test_matches_of_right(self, groundtruth):
        assert groundtruth.matches_of_right(2) == [2]

    def test_duplicates_in(self, groundtruth):
        candidates = CandidateSet([(0, 0), (1, 1), (5, 5)])
        assert groundtruth.duplicates_in(candidates) == 2

    def test_duplicates_in_large_candidate_set(self, groundtruth):
        candidates = CandidateSet((i, j) for i in range(10) for j in range(10))
        assert groundtruth.duplicates_in(candidates) == 3

    def test_reversed(self, groundtruth):
        swapped = groundtruth.reversed()
        assert (0, 0) in swapped
        assert len(swapped) == 3

    def test_one_to_many_supported(self):
        gt = GroundTruth([(0, 1), (0, 2)])
        assert gt.matches_of_left(0) == sorted(gt.matches_of_left(0))
        assert len(gt.matches_of_left(0)) == 2

    def test_from_uids(self):
        left = EntityCollection([EntityProfile("x", {}), EntityProfile("y", {})])
        right = EntityCollection([EntityProfile("u", {}), EntityProfile("v", {})])
        gt = GroundTruth.from_uids([("y", "u")], left, right)
        assert (1, 0) in gt

    def test_from_uids_unknown_raises(self):
        left = EntityCollection([EntityProfile("x", {})])
        right = EntityCollection([EntityProfile("u", {})])
        with pytest.raises(KeyError):
            GroundTruth.from_uids([("nope", "u")], left, right)
