"""Semantic tests of the Meta-blocking weighting schemes on crafted blocks.

Each scheme has a documented intuition (Section IV-B); these tests verify
the intuition holds on minimal constructed block collections.
"""

import pytest

from repro.blocking.blocks import Block, BlockCollection
from repro.blocking.metablocking import PairGraph


def weights_of(blocks, scheme):
    graph = PairGraph(blocks)
    return {
        (int(l), int(r)): w
        for l, r, w in zip(graph.lefts, graph.rights, graph.weights(scheme))
    }


class TestARCS:
    def test_promotes_pairs_sharing_smaller_blocks(self):
        blocks = BlockCollection(
            [
                Block("small", (0,), (0,)),           # 1 comparison
                Block("big", (1, 2, 3), (1, 2, 3)),   # 9 comparisons
            ]
        )
        weights = weights_of(blocks, "ARCS")
        assert weights[(0, 0)] > weights[(1, 1)]


class TestCBS:
    def test_counts_common_blocks(self):
        blocks = BlockCollection(
            [Block("a", (0,), (0,)), Block("b", (0,), (0,)),
             Block("c", (1,), (1,))]
        )
        weights = weights_of(blocks, "CBS")
        assert weights[(0, 0)] == 2.0
        assert weights[(1, 1)] == 1.0


class TestECBS:
    def test_discounts_prolific_entities(self):
        """Two pairs share the same number of blocks, but one involves an
        entity spread across many blocks — its weight drops."""
        blocks = BlockCollection(
            [
                Block("s1", (0,), (0,)),
                Block("s2", (1,), (1,)),
                # Entity 1 (left) also sits in many unrelated blocks.
                Block("n1", (1,), (9,)),
                Block("n2", (1,), (8,)),
                Block("n3", (1,), (7,)),
            ]
        )
        weights = weights_of(blocks, "ECBS")
        assert weights[(0, 0)] > weights[(1, 1)]


class TestJS:
    def test_jaccard_of_block_ids(self):
        blocks = BlockCollection(
            [
                Block("a", (0,), (0,)),
                Block("b", (0,), (0,)),
                Block("c", (0,), (5,)),  # left 0 has a third block
            ]
        )
        weights = weights_of(blocks, "JS")
        # Pair (0,0): |common|=2, |B_0 left|=3, |B_0 right|=2 -> 2/3.
        assert weights[(0, 0)] == pytest.approx(2 / 3)


class TestEJS:
    def test_discounts_high_degree_entities(self):
        blocks = BlockCollection(
            [
                Block("a", (0,), (0,)),
                Block("b", (1,), (1,)),
                # Left entity 1 participates in many distinct pairs.
                Block("hub", (1,), (2, 3, 4, 5)),
            ]
        )
        weights = weights_of(blocks, "EJS")
        assert weights[(0, 0)] > weights[(1, 1)]


class TestChiSquared:
    def test_dependent_cooccurrence_scores_higher(self):
        """A pair co-occurring in all its blocks is far from independent;
        a pair sharing one of many blocks is closer to independence."""
        blocks = BlockCollection(
            [
                Block("t1", (0,), (0,)),
                Block("t2", (0,), (0,)),
                Block("t3", (0,), (0,)),
                Block("u1", (1,), (1,)),
                Block("u2", (1,), (6,)),
                Block("u3", (7,), (1,)),
            ]
        )
        weights = weights_of(blocks, "X2")
        assert weights[(0, 0)] > weights[(1, 1)]

    def test_nonnegative(self):
        blocks = BlockCollection(
            [Block("a", (0, 1), (0, 1)), Block("b", (0,), (1,))]
        )
        for value in weights_of(blocks, "X2").values():
            assert value >= 0.0
