"""Tests for the blocking tuner's memory guard and fallback reporting."""

import pytest

import repro.tuning.blocking as tuning_blocking
from repro.datasets.generator import DatasetSpec, generate
from repro.datasets.noise import NoiseProfile
from repro.tuning.blocking import BlockingWorkflowTuner


def test_memory_guard_skips_huge_graphs(small_generated, monkeypatch):
    """With an absurdly low cap every configuration is skipped and the
    tuner reports an empty, infeasible result instead of crashing."""
    monkeypatch.setattr(tuning_blocking, "MAX_GRAPH_COMPARISONS", 1)
    result = BlockingWorkflowTuner("SBW").tune(small_generated)
    assert not result.feasible
    assert result.configurations_tried == 0


def test_infeasible_dataset_reports_closest_miss():
    """A dataset whose duplicates share no tokens cannot reach the recall
    target; the tuner must report the best-PC configuration (the paper's
    red cells), not an empty result."""
    spec = DatasetSpec(
        name="hopeless", domain="product", size1=40, size2=40,
        duplicates=40, seed=77,
        # Extreme noise: nearly every token mangled on both sides.
        noise1=NoiseProfile(typo_rate=0.95, token_drop_rate=0.5),
        noise2=NoiseProfile(typo_rate=0.95, token_drop_rate=0.5),
    )
    dataset = generate(spec)
    result = BlockingWorkflowTuner("SBW").tune(dataset)
    if not result.feasible:
        assert result.params  # the closest miss is recorded
        assert result.configurations_tried >= 1
        assert 0.0 <= result.pc < 0.9


def test_target_recall_configurable(small_generated):
    """A lower recall target admits more configurations and can only
    improve the achievable precision."""
    strict = BlockingWorkflowTuner("SBW", target_recall=0.95).tune(
        small_generated
    )
    loose = BlockingWorkflowTuner("SBW", target_recall=0.5).tune(
        small_generated
    )
    assert loose.pq >= strict.pq
