"""Tests for the central filter registry (repro.core.registry)."""

import pytest

from repro.bench.harness import ALL_METHODS, EXCLUDED_CELLS
from repro.core import registry
from repro.core.metrics import evaluate_candidates
from repro.core.stages import BLOCKING_STAGES, LEARNED_STAGES, NN_STAGES, Stage


class TestConsistency:
    def test_check_consistency_passes(self):
        registry.check_consistency()

    def test_bijection_with_all_methods(self):
        assert registry.method_codes() == tuple(ALL_METHODS)
        for code in ALL_METHODS:
            assert registry.is_registered(code)

    def test_table_vii_row_order(self):
        assert registry.method_codes() == (
            "SBW", "QBW", "EQBW", "SABW", "ESABW", "PBW", "DBW",
            "EJ", "kNNJ", "DkNN",
            "MH-LSH", "CP-LSH", "HP-LSH", "FAISS", "SCANN", "DB", "DDB",
            "SMB",
        )

    def test_partition_into_tuned_and_baselines(self):
        tuned = registry.fine_tuned_codes()
        baselines = registry.baseline_codes()
        assert len(tuned) == 14
        assert baselines == ("PBW", "DBW", "DkNN", "DDB")
        assert set(tuned) | set(baselines) == set(ALL_METHODS)
        assert not set(tuned) & set(baselines)

    def test_family_codes(self):
        assert registry.family_codes("blocking", baselines=False) == (
            "SBW", "QBW", "EQBW", "SABW", "ESABW", "SMB"
        )
        assert registry.family_codes("blocking") == (
            "SBW", "QBW", "EQBW", "SABW", "ESABW", "PBW", "DBW", "SMB"
        )
        assert registry.family_codes("sparse", baselines=False) == (
            "EJ", "kNNJ"
        )
        assert registry.family_codes("dense", baselines=False) == (
            "MH-LSH", "CP-LSH", "HP-LSH", "FAISS", "SCANN", "DB"
        )
        with pytest.raises(ValueError):
            registry.family_codes("quantum")

    def test_excluded_cells_match_harness(self):
        assert registry.excluded_cells() == EXCLUDED_CELLS
        assert registry.excluded_cells() == frozenset(
            {("MH-LSH", "d10"), ("DB", "d10"), ("DDB", "d10")}
        )

    def test_stage_schemas_match_families(self):
        for spec in registry.all_specs():
            if spec.code == "SMB":
                expected = LEARNED_STAGES
            elif spec.family == "blocking":
                expected = BLOCKING_STAGES
            else:
                expected = NN_STAGES
            assert spec.stages == expected, spec.code
            assert spec.phase_names == tuple(s.name for s in expected)


class TestSpecValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            registry.get("XYZ")

    def test_spec_requires_exactly_one_factory(self):
        with pytest.raises(ValueError, match="exactly one"):
            registry.FilterSpec(
                code="X", family="blocking", order=99,
                stages=BLOCKING_STAGES,
            )
        with pytest.raises(ValueError, match="exactly one"):
            registry.FilterSpec(
                code="X", family="blocking", order=99,
                stages=BLOCKING_STAGES,
                tuner_factory=lambda *a: None,
                baseline_factory=lambda: None,
            )

    def test_spec_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="family"):
            registry.FilterSpec(
                code="X", family="quantum", order=99,
                stages=(Stage("noop"),),
                baseline_factory=lambda: None,
            )

    def test_baselines_cannot_be_tuned(self):
        with pytest.raises(ValueError, match="baseline"):
            registry.make_tuner("PBW")


class TestRoundTrip:
    """One method per family: rebuilding the tuned filter from its params
    reproduces the tuner's reported candidates and recall exactly."""

    def _roundtrip(self, code, dataset):
        tuned = registry.make_tuner(code, profile="fast").tune(dataset)
        rebuilt = registry.build_filter(code, tuned.params)
        candidates = rebuilt.candidates(dataset.left, dataset.right, None)
        evaluation = evaluate_candidates(
            candidates, dataset.groundtruth, len(dataset.left),
            len(dataset.right),
        )
        assert len(candidates) == tuned.candidates
        assert evaluation.pc == pytest.approx(tuned.pc)
        assert evaluation.pq == pytest.approx(tuned.pq)
        # Bit-identical candidate sets across materializations.
        again = registry.build_filter(code, tuned.params).candidates(
            dataset.left, dataset.right, None
        )
        assert again.as_frozenset() == candidates.as_frozenset()

    def test_blocking_roundtrip(self, small_generated):
        self._roundtrip("SBW", small_generated)

    def test_sparse_roundtrip(self, small_generated):
        self._roundtrip("kNNJ", small_generated)

    def test_dense_roundtrip(self, small_generated):
        self._roundtrip("FAISS", small_generated)

    def test_learned_roundtrip(self, small_generated):
        self._roundtrip("SMB", small_generated)


class TestTunerProtocol:
    def test_make_tuner_defaults(self):
        tuner = registry.make_tuner("SBW")
        assert tuner.target_recall == pytest.approx(0.9)

    def test_make_tuner_custom_recall(self):
        tuner = registry.make_tuner("EJ", target_recall=0.8)
        assert tuner.target_recall == pytest.approx(0.8)

    def test_every_tuned_spec_builds_a_tuner(self):
        for code in registry.fine_tuned_codes():
            tuner = registry.make_tuner(code)
            assert hasattr(tuner, "tune")
            assert hasattr(tuner, "build_filter")
