"""Tests for Attribute Clustering Blocking."""

import pytest

from repro.blocking.attribute_clustering import AttributeClusteringBlocking
from repro.blocking.building import StandardBlocking
from repro.core.metrics import pair_completeness
from repro.core.profile import EntityCollection, EntityProfile


@pytest.fixture()
def misaligned_schemas():
    """Two collections describing the same people with different
    attribute names; a shared token ('salem') appears in unrelated
    attributes to create cross-attribute noise."""
    left = EntityCollection(
        [
            EntityProfile("a0", {"fullname": "maria salem", "town": "dover"}),
            EntityProfile("a1", {"fullname": "john baker", "town": "salem"}),
        ]
    )
    right = EntityCollection(
        [
            EntityProfile("b0", {"person": "maria salem", "city": "dover"}),
            EntityProfile("b1", {"person": "john baker", "city": "salem"}),
        ]
    )
    return left, right


class TestClustering:
    def test_aligned_attributes_share_cluster(self, misaligned_schemas):
        left, right = misaligned_schemas
        clusters = AttributeClusteringBlocking().cluster_attributes(left, right)
        assert clusters[(0, "fullname")] == clusters[(1, "person")]
        assert clusters[(0, "town")] == clusters[(1, "city")]
        assert clusters[(0, "fullname")] != clusters[(0, "town")]

    def test_unlinked_attributes_fall_into_glue_cluster(self):
        left = EntityCollection([EntityProfile("a", {"x": "alpha beta"})])
        right = EntityCollection([EntityProfile("b", {"y": "gamma delta"})])
        clusters = AttributeClusteringBlocking(
            link_threshold=0.9
        ).cluster_attributes(left, right)
        assert clusters[(0, "x")] == 0
        assert clusters[(1, "y")] == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AttributeClusteringBlocking(link_threshold=1.5)


class TestBlocking:
    def test_prevents_cross_attribute_matches(self, misaligned_schemas):
        left, right = misaligned_schemas
        blocks = AttributeClusteringBlocking().build(left, right)
        pairs = blocks.distinct_pairs()
        # 'salem' as a name (a0) no longer collides with 'salem' as a
        # city (b1), unlike under plain Standard Blocking.
        standard_pairs = StandardBlocking().build(left, right).distinct_pairs()
        assert (0, 1) in standard_pairs
        assert (0, 1) not in pairs

    def test_keeps_true_matches(self, misaligned_schemas):
        left, right = misaligned_schemas
        blocks = AttributeClusteringBlocking().build(left, right)
        pairs = blocks.distinct_pairs()
        assert (0, 0) in pairs
        assert (1, 1) in pairs

    def test_recall_on_generated_data(self, small_generated):
        blocks = AttributeClusteringBlocking().build(
            small_generated.left, small_generated.right
        )
        pc = pair_completeness(
            blocks.distinct_pairs(), small_generated.groundtruth
        )
        assert pc >= 0.9

    def test_fewer_candidates_than_standard(self, small_generated):
        clustered = AttributeClusteringBlocking().build(
            small_generated.left, small_generated.right
        )
        standard = StandardBlocking().build(
            small_generated.left, small_generated.right
        )
        assert len(clustered.distinct_pairs()) <= len(standard.distinct_pairs())

    def test_schema_based_rejected(self, misaligned_schemas):
        left, right = misaligned_schemas
        with pytest.raises(ValueError, match="schema-agnostic"):
            AttributeClusteringBlocking().build(left, right, "fullname")

    def test_keys_method_unsupported(self):
        with pytest.raises(NotImplementedError):
            AttributeClusteringBlocking().keys("text")
