"""Perf smoke test: the CSR kernel must not be slower than the legacy path.

A tiny-budget run of ``benchmarks/bench_sparse_kernel.py`` (2k-entity
corpus, 1000 per side) asserting the vectorized tuner sweep beats the
legacy per-query loop.  Run just this guard with ``pytest -m perf_smoke``;
it is skipped on known-slow CI boxes (``CI=slow-box``) where wall-clock
comparisons are noise.
"""

import importlib.util
import os
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf_smoke

_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_sparse_kernel.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_sparse_kernel", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-box",
    reason="wall-clock comparisons are unreliable on the slow CI box",
)
def test_kernel_at_least_as_fast_as_legacy(tmp_path):
    bench = _load_bench()
    rows = bench.run_benchmarks(1000, model="T1G", seed=7)
    # The asserts inside run_benchmarks already guarantee identical
    # candidate counts; here we pin the perf contract on the stage with
    # the largest margin (the tuner sweep) so the test stays robust.
    assert bench.speedup(rows, "ejoin_tuner_sweep") >= 1.0
    # The bench must emit a valid BENCH_sparse.json trajectory.
    out = tmp_path / "BENCH_sparse.json"
    bench.write_rows(rows, out)
    bench.write_rows(rows, out)  # appends, never truncates
    import json

    recorded = json.loads(out.read_text())
    assert len(recorded) == 2 * len(rows)
    assert {"kernel", "dataset", "wall_s", "candidates"} <= set(recorded[0])
