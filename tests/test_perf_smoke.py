"""Perf smoke test: the CSR kernel must not be slower than the legacy path.

A tiny-budget run of ``benchmarks/bench_sparse_kernel.py`` (2k-entity
corpus, 1000 per side) asserting the vectorized tuner sweep beats the
legacy per-query loop.  Run just this guard with ``pytest -m perf_smoke``;
it is skipped on known-slow CI boxes (``CI=slow-box``) where wall-clock
comparisons are noise.
"""

import importlib.util
import os
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf_smoke

_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_sparse_kernel.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_sparse_kernel", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-box",
    reason="wall-clock comparisons are unreliable on the slow CI box",
)
def test_kernel_at_least_as_fast_as_legacy(tmp_path):
    bench = _load_bench()
    rows = bench.run_benchmarks(1000, model="T1G", seed=7)
    # The asserts inside run_benchmarks already guarantee identical
    # candidate counts; here we pin the perf contract on the stage with
    # the largest margin (the tuner sweep) so the test stays robust.
    assert bench.speedup(rows, "ejoin_tuner_sweep") >= 1.0
    # The bench must emit a valid BENCH_sparse.json trajectory.
    out = tmp_path / "BENCH_sparse.json"
    bench.write_rows(rows, out)
    bench.write_rows(rows, out)  # appends, never truncates
    import json

    recorded = json.loads(out.read_text())
    assert len(recorded) == 2 * len(rows)
    assert {"kernel", "dataset", "wall_s", "candidates"} <= set(recorded[0])
    # The serving-path row rides along in the same trajectory.
    kernels = {row["kernel"] for row in rows}
    assert "incremental_mixed_ops" in kernels


#: Per-call budget for one incremental query against a 1000-entity
#: catalog.  The batch ε-join answers ~1000 queries in well under a
#: second, so a single streamed lookup taking longer than this means the
#: serving path degenerated to a full rebuild.
QUERY_BUDGET_S = 0.025


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-box",
    reason="wall-clock comparisons are unreliable on the slow CI box",
)
def test_incremental_query_latency_budget():
    import time

    from repro.sparse.scancount import IncrementalScanCountFilter

    bench = _load_bench()
    dataset = bench.make_dataset(1000, seed=7)
    index = IncrementalScanCountFilter(threshold=0.5, model="T1G")
    for profile in dataset.left:
        index.add(profile)
    # Churn a third of the catalog so queries cross tombstoned state.
    removed = list(dataset.left)[::3]
    for profile in removed:
        index.remove(profile.uid)
    for profile in removed:
        index.add(profile)
    probes = list(dataset.right)[:50]
    index.query(probes[0])  # warm-up: first call may compact
    start = time.perf_counter()
    for probe in probes:
        index.query(probe)
    mean_latency = (time.perf_counter() - start) / len(probes)
    assert mean_latency < QUERY_BUDGET_S, (
        f"incremental query averaged {mean_latency * 1e3:.2f}ms "
        f"against a {len(index)}-entity catalog "
        f"(budget {QUERY_BUDGET_S * 1e3:.0f}ms)"
    )
