"""Perf smoke test: the CSR kernels must not be slower than the legacy path.

A tiny-budget run of ``benchmarks/bench_sparse_kernel.py`` (2k-entity
corpus, 1000 per side) asserting every query-phase ``*_csr`` kernel beats
its ``*_legacy`` twin, plus the aggregation contract of the trajectory
file.  Run just this guard with ``pytest -m perf_smoke``; it is skipped
on known-slow CI boxes (``CI=slow-box``) where wall-clock comparisons
are noise.  The full 5k-scale assertion (every kernel, index build
included) is gated behind ``PERF_SMOKE_FULL=1`` — CI's dedicated perf
step sets it; the default test run stays fast.
"""

import importlib.util
import json
import os
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf_smoke

_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_sparse_kernel.py"
)

#: Query-phase stages whose CSR kernel must win at any scale.
QUERY_STAGES = ("batch_query", "ejoin", "knn", "ejoin_tuner_sweep")

ROW_SCHEMA = {"kernel", "dataset", "workers", "wall_s", "candidates", "runs"}


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_sparse_kernel", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-box",
    reason="wall-clock comparisons are unreliable on the slow CI box",
)
def test_kernel_at_least_as_fast_as_legacy():
    bench = _load_bench()
    rows = bench.run_benchmarks(1000, model="T1G", seed=7)
    # The asserts inside run_benchmarks already guarantee identical
    # candidate counts; here we pin the perf contract: every query-phase
    # CSR kernel must at least match the legacy loop.  (Index build is
    # excluded at this tiny scale — sub-millisecond walls are noise — and
    # asserted by the 5k-scale test below.)
    for stage in QUERY_STAGES:
        assert bench.speedup(rows, stage) >= 1.0, stage
    assert ROW_SCHEMA <= set(rows[0])
    # The serving-path row rides along in the same trajectory.
    kernels = {row["kernel"] for row in rows}
    assert "incremental_mixed_ops" in kernels


def test_write_rows_aggregates_instead_of_duplicating(tmp_path):
    bench = _load_bench()
    rows = [
        {
            "kernel": "batch_query_csr",
            "dataset": "bench-1000x1000-T1G",
            "workers": 1,
            "wall_s": 0.5,
            "candidates": 123,
            "runs": 3,
        },
        {
            "kernel": "batch_query_csr",
            "dataset": "bench-1000x1000-T1G",
            "workers": 2,
            "wall_s": 0.4,
            "candidates": 123,
            "runs": 3,
        },
    ]
    out = tmp_path / "BENCH_sparse.json"
    bench.write_rows(rows, out)
    bench.write_rows(rows, out)  # aggregates, never appends duplicates
    recorded = json.loads(out.read_text())
    assert len(recorded) == len(rows)
    by_key = {(r["kernel"], r["workers"]): r for r in recorded}
    assert by_key[("batch_query_csr", 1)]["runs"] == 6
    assert by_key[("batch_query_csr", 1)]["wall_s"] == pytest.approx(0.5)
    assert ROW_SCHEMA <= set(recorded[0])
    # No temp file left behind (the rewrite is tmp + os.replace).
    assert list(tmp_path.iterdir()) == [out]


def test_write_rows_weighted_median_and_workload_reset(tmp_path):
    bench = _load_bench()
    out = tmp_path / "BENCH_sparse.json"
    base = {
        "kernel": "ejoin_csr",
        "dataset": "bench-1000x1000-T1G",
        "workers": 1,
        "candidates": 99,
    }
    bench.write_rows([dict(base, wall_s=1.0, runs=5)], out)
    bench.write_rows([dict(base, wall_s=9.0, runs=1)], out)
    row = json.loads(out.read_text())[0]
    # 5-run median dominates the 1-run outlier.
    assert row["wall_s"] == pytest.approx(1.0)
    assert row["runs"] == 6
    # A changed candidate count means a changed workload: stats restart.
    bench.write_rows([dict(base, wall_s=2.0, runs=2, candidates=77)], out)
    row = json.loads(out.read_text())[0]
    assert row["runs"] == 2 and row["candidates"] == 77
    assert row["wall_s"] == pytest.approx(2.0)


def test_write_rows_upgrades_old_schema_rows(tmp_path):
    bench = _load_bench()
    out = tmp_path / "BENCH_sparse.json"
    out.write_text(json.dumps([
        {"kernel": "knn_csr", "dataset": "d", "wall_s": 1.5, "candidates": 7},
        {"malformed": True},
    ]))
    bench.write_rows([], out)
    recorded = json.loads(out.read_text())
    assert len(recorded) == 1
    assert recorded[0]["workers"] == 1 and recorded[0]["runs"] == 1


@pytest.mark.skipif(
    os.environ.get("PERF_SMOKE_FULL") != "1",
    reason="5k-scale perf assertion runs only with PERF_SMOKE_FULL=1 (CI)",
)
def test_every_csr_kernel_beats_legacy_at_5k():
    bench = _load_bench()
    rows = bench.run_benchmarks(5000, model="T1G", seed=42, repeats=3)
    for stage in QUERY_STAGES:
        ratio = bench.speedup(rows, stage)
        assert ratio >= 1.0, f"{stage}: csr slower than legacy ({ratio:.2f}x)"
    # Index build: both paths are bounded by the same per-occurrence
    # vocabulary-dict insertion (~5ms of ~7ms at this scale; the CSR
    # side's array work is the rest), so the CSR win is a few percent
    # and inside wall-clock noise.  Assert no real regression instead
    # of flaking on a coin-flip margin.
    build = bench.speedup(rows, "index_build")
    assert build >= 0.85, f"index_build: csr regressed ({build:.2f}x)"


#: Per-call budget for one incremental query against a 1000-entity
#: catalog.  The vectorized serving path answers a probe in ~0.2ms; a
#: single streamed lookup blowing a 5ms budget means it degenerated to
#: per-candidate Python scoring (or a full rebuild).
QUERY_BUDGET_S = 0.005


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-box",
    reason="wall-clock comparisons are unreliable on the slow CI box",
)
def test_incremental_query_latency_budget():
    import time

    from repro.sparse.scancount import IncrementalScanCountFilter

    bench = _load_bench()
    dataset = bench.make_dataset(1000, seed=7)
    index = IncrementalScanCountFilter(threshold=0.5, model="T1G")
    for profile in dataset.left:
        index.add(profile)
    # Churn a third of the catalog so queries cross tombstoned state.
    removed = list(dataset.left)[::3]
    for profile in removed:
        index.remove(profile.uid)
    for profile in removed:
        index.add(profile)
    probes = list(dataset.right)[:50]
    index.query(probes[0])  # warm-up: first call may compact
    start = time.perf_counter()
    for probe in probes:
        index.query(probe)
    mean_latency = (time.perf_counter() - start) / len(probes)
    assert mean_latency < QUERY_BUDGET_S, (
        f"incremental query averaged {mean_latency * 1e3:.2f}ms "
        f"against a {len(index)}-entity catalog "
        f"(budget {QUERY_BUDGET_S * 1e3:.0f}ms)"
    )
