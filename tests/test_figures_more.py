"""Extra coverage for the figure helpers."""

import pytest

from repro.bench.figures import (
    RankSeries,
    duplicate_rank_distribution,
    figure04_06_series,
    rank_histogram,
)


class TestRankHistogram:
    def test_custom_bins(self):
        histogram = rank_histogram([0, 3, 10], bins=(5,))
        assert histogram == [("[0,5)", 2), (">=5", 1)]

    def test_empty_input(self):
        histogram = rank_histogram([])
        assert all(count == 0 for __, count in histogram)

    def test_total_preserved(self):
        ranks = [0, 1, 2, 7, 30, 199, 200, 500]
        histogram = rank_histogram(ranks)
        assert sum(count for __, count in histogram) == len(ranks)


class TestRankDistribution:
    def test_schema_based_setting(self, small_generated):
        ranks = duplicate_rank_distribution(
            small_generated, "syntactic", attribute="title"
        )
        assert len(ranks) == len(small_generated.groundtruth)

    def test_max_rank_caps(self, small_generated):
        ranks = duplicate_rank_distribution(
            small_generated, "semantic", max_rank=5
        )
        assert max(ranks) <= 5

    def test_semantic_reverse_direction(self, small_generated):
        forward = duplicate_rank_distribution(small_generated, "semantic")
        backward = duplicate_rank_distribution(
            small_generated, "semantic", reverse=True
        )
        assert len(forward) == len(backward)


class TestSeries:
    def test_series_fields(self):
        series = figure04_06_series(["d1"], settings=("a",), reverses=(True,))
        for entry in series:
            assert isinstance(entry, RankSeries)
            assert entry.dataset == "d1"
            assert entry.reverse is True
            assert 0.0 <= entry.top1_fraction <= 1.0

    def test_both_settings_requested(self):
        series = figure04_06_series(
            ["d2"], settings=("a", "b"), reverses=(False,)
        )
        settings = {entry.setting for entry in series}
        assert settings == {"a", "b"}
