"""Unit tests for PC, PQ, RR and the evaluation helpers."""

import pytest

from repro.core.candidates import CandidateSet
from repro.core.groundtruth import GroundTruth
from repro.core.metrics import (
    evaluate_candidates,
    f_measure,
    pair_completeness,
    pairs_quality,
    reduction_ratio,
    timed,
)


@pytest.fixture()
def gt():
    return GroundTruth([(0, 0), (1, 1), (2, 2), (3, 3)])


class TestPairCompleteness:
    def test_full_recall(self, gt):
        candidates = CandidateSet([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert pair_completeness(candidates, gt) == 1.0

    def test_half_recall(self, gt):
        candidates = CandidateSet([(0, 0), (1, 1), (9, 9)])
        assert pair_completeness(candidates, gt) == 0.5

    def test_empty_candidates(self, gt):
        assert pair_completeness(CandidateSet(), gt) == 0.0

    def test_empty_groundtruth(self):
        assert pair_completeness(CandidateSet([(0, 0)]), GroundTruth()) == 0.0


class TestPairsQuality:
    def test_perfect_precision(self, gt):
        candidates = CandidateSet([(0, 0), (1, 1)])
        assert pairs_quality(candidates, gt) == 1.0

    def test_mixed_precision(self, gt):
        candidates = CandidateSet([(0, 0), (7, 7), (8, 8), (9, 9)])
        assert pairs_quality(candidates, gt) == 0.25

    def test_empty_candidates(self, gt):
        assert pairs_quality(CandidateSet(), gt) == 0.0


class TestReductionRatio:
    def test_no_candidates_full_reduction(self):
        assert reduction_ratio(CandidateSet(), 10, 10) == 1.0

    def test_all_pairs_no_reduction(self):
        candidates = CandidateSet((i, j) for i in range(3) for j in range(3))
        assert reduction_ratio(candidates, 3, 3) == 0.0

    def test_zero_sized_input(self):
        assert reduction_ratio(CandidateSet(), 0, 5) == 0.0


class TestFMeasure:
    def test_harmonic_mean(self):
        assert f_measure(1.0, 1.0) == 1.0
        assert f_measure(0.5, 0.5) == 0.5

    def test_zero(self):
        assert f_measure(0.0, 0.0) == 0.0

    def test_asymmetry_punished(self):
        assert f_measure(1.0, 0.1) < 0.2


class TestEvaluateCandidates:
    def test_all_fields(self, gt):
        candidates = CandidateSet([(0, 0), (1, 1), (5, 5), (6, 6)])
        ev = evaluate_candidates(candidates, gt, 10, 10)
        assert ev.pc == 0.5
        assert ev.pq == 0.5
        assert ev.candidates == 4
        assert ev.duplicates_found == 2
        assert ev.rr == pytest.approx(1.0 - 4 / 100)

    def test_f1_property(self, gt):
        candidates = CandidateSet([(0, 0)])
        ev = evaluate_candidates(candidates, gt, 4, 4)
        assert ev.f1 == f_measure(ev.pc, ev.pq)

    def test_meets_recall(self, gt):
        candidates = CandidateSet([(0, 0), (1, 1), (2, 2), (3, 3)])
        ev = evaluate_candidates(candidates, gt, 4, 4)
        assert ev.meets_recall(0.9)
        assert ev.meets_recall(1.0)


class TestTimed:
    def test_returns_result_and_elapsed(self):
        result, elapsed = timed(lambda: 42)
        assert result == 42
        assert elapsed >= 0.0
