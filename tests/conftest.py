"""Shared fixtures: small hand-built collections and a tiny dataset."""

from __future__ import annotations

import pytest

from repro.core.groundtruth import GroundTruth
from repro.core.profile import EntityCollection, EntityProfile
from repro.datasets.generator import DatasetSpec, ERDataset, generate
from repro.datasets.noise import NoiseProfile


@pytest.fixture(scope="session", autouse=True)
def _env_fault_injector():
    """Honour ``REPRO_FAULT_INJECT`` for the whole pytest session.

    CI runs slices of the suite under scripted faults (e.g. a delay at
    ``serving/publish``); with no spec in the environment this is a
    no-op.  The injector stays installed for the session so its
    deterministic fire counters span all tests in the invocation.
    """
    from repro.bench.resilience import FaultInjector

    injector = FaultInjector.from_env()
    if injector is None:
        yield
        return
    injector.install()
    try:
        yield
    finally:
        injector.uninstall()


@pytest.fixture()
def left_collection() -> EntityCollection:
    """Four product-like profiles for E1."""
    return EntityCollection(
        [
            EntityProfile(
                "a0", {"title": "sonacore ultra laptop X100", "brand": "sonacore"}
            ),
            EntityProfile(
                "a1", {"title": "veltron compact mouse M20", "brand": "veltron"}
            ),
            EntityProfile(
                "a2", {"title": "quantix wireless router R7", "brand": "quantix"}
            ),
            EntityProfile(
                "a3", {"title": "sonacore ultra laptop X200", "brand": "sonacore"}
            ),
        ],
        name="left",
    )


@pytest.fixture()
def right_collection() -> EntityCollection:
    """Four noisy counterparts for E2 (a0<->b0, a1<->b1, a2<->b2 match)."""
    return EntityCollection(
        [
            EntityProfile(
                "b0", {"title": "sonacore ultra laptop X100 edition"}
            ),
            EntityProfile("b1", {"title": "veltron compact mouse M20"}),
            EntityProfile("b2", {"title": "quantix wireles router R7"}),
            EntityProfile("b3", {"title": "aerolite digital camera C5"}),
        ],
        name="right",
    )


@pytest.fixture()
def groundtruth() -> GroundTruth:
    return GroundTruth([(0, 0), (1, 1), (2, 2)])


@pytest.fixture()
def tiny_dataset(left_collection, right_collection, groundtruth) -> ERDataset:
    """A hand-built ERDataset around the two fixtures above."""
    spec = DatasetSpec(
        name="tiny",
        domain="product",
        size1=4,
        size2=4,
        duplicates=3,
        seed=1,
    )
    return ERDataset(
        spec=spec,
        left=left_collection,
        right=right_collection,
        groundtruth=groundtruth,
    )


@pytest.fixture(scope="session")
def small_generated() -> ERDataset:
    """A small generated dataset, shared across the whole session."""
    spec = DatasetSpec(
        name="small",
        domain="product",
        size1=60,
        size2=80,
        duplicates=40,
        seed=7,
        noise1=NoiseProfile(typo_rate=0.1, token_drop_rate=0.1),
        noise2=NoiseProfile(typo_rate=0.15, token_drop_rate=0.1),
    )
    return generate(spec)
