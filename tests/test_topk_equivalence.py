"""Equivalence property from Section IV-C: the global top-k join equals
an ε-Join whose threshold is the k-th highest pair similarity."""

import pytest

from repro.sparse.epsilon_join import EpsilonJoin
from repro.sparse.similarity import set_similarity
from repro.sparse.topk_join import TopKJoin
from repro.text.tokenizers import RepresentationModel


def all_pair_similarities(dataset, model, measure):
    representation = RepresentationModel(model)
    left_sets = [representation.tokens(t) for t in dataset.left.texts()]
    right_sets = [representation.tokens(t) for t in dataset.right.texts()]
    sims = []
    for i, a in enumerate(left_sets):
        for j, b in enumerate(right_sets):
            if a & b:
                sims.append(set_similarity(a, b, measure))
    return sorted(sims, reverse=True)


@pytest.mark.parametrize("k", [1, 5, 20])
def test_topk_equals_epsilon_at_kth_similarity(small_generated, k):
    sims = all_pair_similarities(small_generated, "C3G", "cosine")
    threshold = sims[k - 1]
    topk = TopKJoin(k, model="C3G", measure="cosine").candidates(
        small_generated.left, small_generated.right
    )
    epsilon = EpsilonJoin(threshold, model="C3G", measure="cosine").candidates(
        small_generated.left, small_generated.right
    )
    assert topk == epsilon


def test_topk_keeps_ties_at_cutoff(small_generated):
    """|top-k| >= k whenever at least k overlapping pairs exist."""
    join = TopKJoin(10, model="C3G", measure="jaccard")
    candidates = join.candidates(small_generated.left, small_generated.right)
    assert len(candidates) >= 10


def test_topk_monotone_in_k(small_generated):
    small = TopKJoin(3, model="C3G").candidates(
        small_generated.left, small_generated.right
    )
    large = TopKJoin(30, model="C3G").candidates(
        small_generated.left, small_generated.right
    )
    assert small.as_frozenset() <= large.as_frozenset()
