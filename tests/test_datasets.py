"""Unit tests for the dataset substrate: noise, domains, generation."""

import numpy as np
import pytest

from repro.datasets.domains import DOMAINS
from repro.datasets.generator import DatasetSpec, generate
from repro.datasets.noise import NoiseProfile, TextNoiser
from repro.datasets.registry import (
    DATASET_NAMES,
    DATASET_SPECS,
    SCHEMA_BASED_DATASETS,
    load_all,
    load_dataset,
)
from repro.datasets.stats import (
    attribute_stats,
    character_length,
    select_best_attribute,
    text_volume,
    vocabulary_size,
)


class TestNoiseProfile:
    def test_validates_rates(self):
        with pytest.raises(ValueError):
            NoiseProfile(typo_rate=1.5)
        with pytest.raises(ValueError):
            NoiseProfile(misplace_rate=-0.1)

    def test_defaults_are_zero(self):
        profile = NoiseProfile()
        assert profile.typo_rate == 0.0
        assert profile.misplace_rate == 0.0


class TestTextNoiser:
    def make(self, **kw):
        return TextNoiser(NoiseProfile(**kw), np.random.default_rng(0))

    def test_typo_changes_token(self):
        noiser = self.make()
        changed = sum(
            1 for __ in range(50) if noiser.typo("wireless") != "wireless"
        )
        assert changed > 40  # transpositions of equal chars can no-op

    def test_typo_single_char_token(self):
        noiser = self.make()
        for __ in range(20):
            result = noiser.typo("a")
            assert len(result) in (1, 2)  # substitute or insert only

    def test_typo_empty_token(self):
        assert self.make().typo("") == ""

    def test_abbreviate_short_token_untouched(self):
        assert self.make().abbreviate("abc") == "abc"

    def test_abbreviate_shortens(self):
        noiser = self.make()
        result = noiser.abbreviate("extraordinary")
        assert len(result) < len("extraordinary")
        assert "extraordinary".startswith(result)

    def test_zero_noise_is_identity(self):
        noiser = self.make()
        assert noiser.perturb_value("wireless keyboard pro") == (
            "wireless keyboard pro"
        )

    def test_drop_keeps_first_token(self):
        noiser = self.make(token_drop_rate=1.0)
        result = noiser.perturb_value("alpha beta gamma")
        assert result.split()[0] == "alpha"

    def test_extra_token_appended(self):
        noiser = self.make(extra_token_rate=1.0)
        result = noiser.perturb_value("alpha", filler="edition")
        assert result.endswith("edition")

    def test_deterministic_given_seed(self):
        a = TextNoiser(NoiseProfile(typo_rate=0.5), np.random.default_rng(3))
        b = TextNoiser(NoiseProfile(typo_rate=0.5), np.random.default_rng(3))
        assert a.perturb_value("wireless keyboard") == b.perturb_value(
            "wireless keyboard"
        )


class TestDomains:
    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_generates_requested_count(self, name):
        domain = DOMAINS[name]
        records = domain.generate(np.random.default_rng(0), 25)
        assert len(records) == 25

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_key_attribute_always_present(self, name):
        domain = DOMAINS[name]
        records = domain.generate(np.random.default_rng(1), 30)
        assert all(record.get(domain.key_attribute) for record in records)

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_values_are_strings(self, name):
        records = DOMAINS[name].generate(np.random.default_rng(2), 10)
        for record in records:
            for value in record.values():
                assert isinstance(value, str)

    def test_families_create_confusable_neighbors(self):
        domain = DOMAINS["product"]
        records = domain.generate(np.random.default_rng(3), 100)
        titles = [set(r["title"].split()) for r in records]
        # Some non-identical pairs share most of their tokens.
        confusable = 0
        for i in range(len(titles)):
            for j in range(i + 1, len(titles)):
                if titles[i] != titles[j]:
                    overlap = len(titles[i] & titles[j])
                    if overlap >= 3:
                        confusable += 1
        assert confusable > 10

    def test_deterministic(self):
        domain = DOMAINS["media"]
        a = domain.generate(np.random.default_rng(5), 10)
        b = domain.generate(np.random.default_rng(5), 10)
        assert a == b


class TestDatasetSpec:
    def test_rejects_unknown_domain(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "nope", 10, 10, 5, seed=0)

    def test_rejects_too_many_duplicates(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "product", 10, 10, 11, seed=0)

    def test_key_attribute_from_domain(self):
        spec = DatasetSpec("x", "product", 10, 10, 5, seed=0)
        assert spec.key_attribute == "title"

    def test_cartesian_product(self):
        spec = DatasetSpec("x", "product", 10, 20, 5, seed=0)
        assert spec.cartesian_product == 200


class TestGenerate:
    def test_sizes(self, small_generated):
        assert len(small_generated.left) == 60
        assert len(small_generated.right) == 80
        assert len(small_generated.groundtruth) == 40

    def test_groundtruth_pairs_aligned(self, small_generated):
        for left_id, right_id in small_generated.groundtruth:
            assert left_id == right_id  # first `duplicates` are shared

    def test_duplicates_share_content(self, small_generated):
        shared = 0
        for left_id, right_id in small_generated.groundtruth:
            left_tokens = set(small_generated.left[left_id].text().split())
            right_tokens = set(small_generated.right[right_id].text().split())
            if left_tokens & right_tokens:
                shared += 1
        assert shared >= 0.9 * len(small_generated.groundtruth)

    def test_deterministic(self):
        spec = DatasetSpec("x", "media", 30, 30, 10, seed=42)
        a = generate(spec)
        b = generate(spec)
        assert a.left.texts() == b.left.texts()
        assert a.right.texts() == b.right.texts()

    def test_misplacement_moves_key_value(self):
        spec = DatasetSpec(
            "x", "media", 200, 200, 100, seed=9,
            noise1=NoiseProfile(misplace_rate=1.0),
            misplace_target="actors",
        )
        dataset = generate(spec)
        # Every left profile lost its title, but the tokens moved to actors.
        assert all(not p.has_value("title") for p in dataset.left)
        assert dataset.left.coverage("actors") == 1.0

    def test_groundtruth_coverage_reflects_misplacement(self):
        spec = DatasetSpec(
            "x", "media", 50, 50, 50, seed=9,
            noise2=NoiseProfile(misplace_rate=0.5),
            misplace_target="actors",
        )
        dataset = generate(spec)
        coverage = dataset.groundtruth_coverage("title")
        assert 0.2 < coverage < 0.8


class TestRegistry:
    def test_ten_datasets(self):
        assert len(DATASET_NAMES) == 10

    def test_memoization(self):
        assert load_dataset("d1") is load_dataset("d1")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("d99")

    def test_increasing_computational_cost(self):
        products = [
            DATASET_SPECS[name].cartesian_product for name in DATASET_NAMES
        ]
        assert products == sorted(products)

    def test_schema_based_datasets_have_coverage(self):
        for name in SCHEMA_BASED_DATASETS:
            dataset = load_dataset(name)
            assert dataset.groundtruth_coverage(dataset.key_attribute) >= 0.9

    def test_excluded_datasets_lack_coverage(self):
        for name in ("d5", "d6", "d7", "d10"):
            dataset = load_dataset(name)
            assert dataset.groundtruth_coverage(dataset.key_attribute) < 0.9

    def test_load_all_order(self):
        names = [ds.name for ds in load_all()]
        assert names == list(DATASET_NAMES)


class TestStats:
    def test_best_attribute_is_key_attribute(self):
        dataset = load_dataset("d2")
        assert select_best_attribute(dataset) == "title"

    def test_attribute_stats_sorted_by_score(self, small_generated):
        stats = attribute_stats(small_generated)
        scores = [s.score for s in stats]
        assert scores == sorted(scores, reverse=True)

    def test_year_less_distinctive_than_title(self):
        dataset = load_dataset("d4")
        stats = {s.attribute: s for s in attribute_stats(dataset)}
        assert stats["year"].distinctiveness < stats["title"].distinctiveness

    def test_schema_based_reduces_vocabulary(self, small_generated):
        agnostic = vocabulary_size(small_generated, None)
        based = vocabulary_size(small_generated, "title")
        assert based < agnostic

    def test_cleaning_reduces_characters(self, small_generated):
        plain = character_length(small_generated, None, cleaning=False)
        cleaned = character_length(small_generated, None, cleaning=True)
        assert cleaned <= plain

    def test_text_volume_consistency(self, small_generated):
        volume = text_volume(small_generated, "title")
        assert volume.vocabulary_based <= volume.vocabulary_agnostic
        assert volume.characters_based <= volume.characters_agnostic
        assert volume.vocabulary_based_clean <= volume.vocabulary_based
