"""Tests for Dirty ER: self-join adapter and dirty dataset generation."""

import pytest

from repro.blocking.building import StandardBlocking
from repro.blocking.workflow import BlockingWorkflow
from repro.core.candidates import CandidateSet
from repro.datasets.noise import NoiseProfile
from repro.dirty import (
    DirtyDatasetSpec,
    clusters_to_groundtruth,
    dirty_candidates,
    evaluate_dirty,
    generate_dirty,
)
from repro.sparse.knn_join import KNNJoin


@pytest.fixture(scope="module")
def dirty_dataset():
    spec = DirtyDatasetSpec(
        name="dirty-products",
        domain="product",
        size=120,
        cluster_sizes=(3, 2, 2, 2, 2, 2),
        seed=21,
        noise=NoiseProfile(typo_rate=0.1, token_drop_rate=0.1),
    )
    return generate_dirty(spec)


class TestClustersToGroundtruth:
    def test_pairs_within_clusters(self):
        gt = clusters_to_groundtruth([(0, 1, 2), (5, 6)])
        assert (0, 1) in gt and (0, 2) in gt and (1, 2) in gt
        assert (5, 6) in gt
        assert len(gt) == 4

    def test_pairs_canonicalized(self):
        gt = clusters_to_groundtruth([(7, 3)])
        assert (3, 7) in gt
        assert (7, 3) not in gt

    def test_duplicate_members_collapsed(self):
        gt = clusters_to_groundtruth([(1, 1, 2)])
        assert len(gt) == 1


class TestDirtySpec:
    def test_validates_domain(self):
        with pytest.raises(ValueError):
            DirtyDatasetSpec("x", "nope", 10, (2,), seed=0)

    def test_validates_cluster_sizes(self):
        with pytest.raises(ValueError):
            DirtyDatasetSpec("x", "product", 10, (1,), seed=0)
        with pytest.raises(ValueError):
            DirtyDatasetSpec("x", "product", 3, (2, 2), seed=0)


class TestGenerateDirty:
    def test_collection_size(self, dirty_dataset):
        assert len(dirty_dataset.collection) == 120

    def test_groundtruth_size(self, dirty_dataset):
        # one triple (3 pairs) + five doubles (1 pair each) = 8 pairs.
        assert len(dirty_dataset.groundtruth) == 8

    def test_cluster_ids_valid(self, dirty_dataset):
        for cluster in dirty_dataset.clusters:
            for member in cluster:
                assert 0 <= member < len(dirty_dataset.collection)

    def test_deterministic(self):
        spec = DirtyDatasetSpec(
            "x", "media", 40, (2, 2), seed=5,
            misplace_target="actors",
        )
        a = generate_dirty(spec)
        b = generate_dirty(spec)
        assert a.collection.texts() == b.collection.texts()

    def test_cluster_members_share_content(self, dirty_dataset):
        sharing = 0
        for cluster in dirty_dataset.clusters:
            tokens = [
                set(dirty_dataset.collection[m].text().split())
                for m in cluster
            ]
            if all(tokens[0] & t for t in tokens[1:]):
                sharing += 1
        assert sharing == len(dirty_dataset.clusters)


class TestDirtyCandidates:
    def test_no_self_pairs(self, dirty_dataset):
        workflow = BlockingWorkflow(StandardBlocking())
        candidates = dirty_candidates(workflow, dirty_dataset.collection)
        for left, right in candidates:
            assert left != right

    def test_pairs_canonicalized(self, dirty_dataset):
        workflow = BlockingWorkflow(StandardBlocking())
        candidates = dirty_candidates(workflow, dirty_dataset.collection)
        for left, right in candidates:
            assert left < right

    def test_blocking_finds_clusters(self, dirty_dataset):
        workflow = BlockingWorkflow(StandardBlocking())
        candidates = dirty_candidates(workflow, dirty_dataset.collection)
        evaluation = evaluate_dirty(
            candidates, dirty_dataset.groundtruth, len(dirty_dataset.collection)
        )
        assert evaluation.pc >= 0.8

    def test_knn_needs_extra_neighbor_for_self_match(self, dirty_dataset):
        """In a self-join, every entity's nearest neighbour is itself, so
        k=1 yields (almost) nothing while k=2 finds the clusters."""
        k1 = dirty_candidates(
            KNNJoin(k=1, model="C3G"), dirty_dataset.collection
        )
        k2 = dirty_candidates(
            KNNJoin(k=2, model="C3G"), dirty_dataset.collection
        )
        ev1 = evaluate_dirty(
            k1, dirty_dataset.groundtruth, len(dirty_dataset.collection)
        )
        ev2 = evaluate_dirty(
            k2, dirty_dataset.groundtruth, len(dirty_dataset.collection)
        )
        assert ev2.pc > ev1.pc

    def test_evaluate_dirty_bounds(self, dirty_dataset):
        candidates = CandidateSet([(0, 1)])
        evaluation = evaluate_dirty(
            candidates, dirty_dataset.groundtruth, len(dirty_dataset.collection)
        )
        assert 0.0 <= evaluation.pc <= 1.0
        assert 0.0 <= evaluation.rr <= 1.0
