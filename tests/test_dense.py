"""Unit tests for the dense NN substrate: embeddings, indexes, LSH."""

import numpy as np
import pytest

from repro.core.metrics import pair_completeness
from repro.dense.autoencoder import Autoencoder
from repro.dense.crosspolytope import CrossPolytopeLSH, fwht
from repro.dense.deepblocker import DeepBlocker
from repro.dense.embeddings import HashedNGramEmbedder
from repro.dense.flat_index import FlatIndex
from repro.dense.hyperplane import HyperplaneLSH, probe_sequence
from repro.dense.knn_search import FaissKNN, ScannKNN
from repro.dense.minhash import MinHashLSH
from repro.dense.partitioned import PartitionedIndex, ProductQuantizer, kmeans


class TestHashedNGramEmbedder:
    def test_deterministic(self):
        a = HashedNGramEmbedder().embed_text("wireless keyboard")
        b = HashedNGramEmbedder().embed_text("wireless keyboard")
        np.testing.assert_array_equal(a, b)

    def test_dimension(self):
        assert HashedNGramEmbedder(dim=300).embed_text("x").shape == (300,)

    def test_normalized(self):
        vector = HashedNGramEmbedder().embed_text("wireless keyboard")
        assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-5)

    def test_empty_text_is_zero_vector(self):
        vector = HashedNGramEmbedder().embed_text("")
        assert np.allclose(vector, 0.0)

    def test_similar_strings_closer_than_dissimilar(self):
        embedder = HashedNGramEmbedder()
        base = embedder.embed_text("wireless keyboard")
        typo = embedder.embed_text("wireles keyboard")
        other = embedder.embed_text("espresso machine")
        assert base @ typo > base @ other

    def test_subword_composition_handles_oov(self):
        embedder = HashedNGramEmbedder()
        # A made-up domain term still embeds near its morphological kin.
        a = embedder.embed_text("sonacore")
        b = embedder.embed_text("sonacores")
        assert a @ b > 0.5

    def test_embed_texts_matrix(self):
        matrix = HashedNGramEmbedder(dim=64).embed_texts(["a b", "c d", ""])
        assert matrix.shape == (3, 64)

    def test_embed_texts_empty_list(self):
        assert HashedNGramEmbedder(dim=16).embed_texts([]).shape == (0, 16)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HashedNGramEmbedder(dim=0)
        with pytest.raises(ValueError):
            HashedNGramEmbedder(ngram_range=(4, 2))


class TestFlatIndex:
    def test_exact_l2_neighbors(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((50, 8)).astype(np.float32)
        index = FlatIndex(vectors, metric="l2")
        ids, __ = index.search(vectors[:5], k=1)
        np.testing.assert_array_equal(ids[:, 0], np.arange(5))

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((40, 6)).astype(np.float32)
        queries = rng.standard_normal((7, 6)).astype(np.float32)
        index = FlatIndex(vectors, metric="l2")
        ids, __ = index.search(queries, k=3)
        for q, row in zip(queries, ids):
            distances = np.linalg.norm(vectors - q, axis=1)
            expected = set(np.argsort(distances)[:3].tolist())
            assert set(row.tolist()) == expected

    def test_dot_metric(self):
        vectors = np.eye(4, dtype=np.float32)
        index = FlatIndex(vectors, metric="dot")
        ids, __ = index.search(np.array([[0.0, 1.0, 0.0, 0.0]]), k=1)
        assert ids[0, 0] == 1

    def test_k_clipped_to_index_size(self):
        index = FlatIndex(np.eye(3, dtype=np.float32))
        ids, __ = index.search(np.eye(3, dtype=np.float32), k=10)
        assert ids.shape == (3, 3)

    def test_blocked_queries_consistent(self):
        rng = np.random.default_rng(2)
        vectors = rng.standard_normal((30, 5)).astype(np.float32)
        queries = rng.standard_normal((20, 5)).astype(np.float32)
        small = FlatIndex(vectors, block_size=3).search(queries, 2)[0]
        large = FlatIndex(vectors, block_size=1000).search(queries, 2)[0]
        np.testing.assert_array_equal(small, large)

    def test_range_search_l2(self):
        vectors = np.array([[0.0], [1.0], [5.0]], dtype=np.float32)
        index = FlatIndex(vectors, metric="l2")
        hits = index.range_search(np.array([[0.0]], dtype=np.float32), radius=2.0)
        assert set(hits[0].tolist()) == {0, 1}

    def test_empty_index(self):
        index = FlatIndex(np.zeros((0, 4), dtype=np.float32))
        ids, scores = index.search(np.zeros((2, 4), dtype=np.float32), k=3)
        assert ids.shape == (2, 0)

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            FlatIndex(np.zeros((1, 2)), metric="cosine")

    def test_invalid_k(self):
        index = FlatIndex(np.zeros((1, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            index.search(np.zeros((1, 2)), k=0)


class TestKMeans:
    def test_centroid_count(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((100, 4)).astype(np.float32)
        assert kmeans(vectors, 7).shape == (7, 4)

    def test_clusters_capped_at_n(self):
        vectors = np.eye(3, dtype=np.float32)
        assert kmeans(vectors, 10).shape[0] == 3

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((50, 4)).astype(np.float32)
        np.testing.assert_array_equal(
            kmeans(vectors, 5, seed=3), kmeans(vectors, 5, seed=3)
        )

    def test_separable_clusters_found(self):
        a = np.full((20, 2), 0.0, dtype=np.float32)
        b = np.full((20, 2), 100.0, dtype=np.float32)
        centroids = kmeans(np.vstack([a, b]), 2, seed=1)
        values = sorted(centroids[:, 0].tolist())
        assert values[0] == pytest.approx(0.0, abs=1.0)
        assert values[1] == pytest.approx(100.0, abs=1.0)


class TestPartitionedIndex:
    def test_recall_close_to_exact(self):
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((200, 16)).astype(np.float32)
        queries = vectors[:20] + 0.01 * rng.standard_normal((20, 16)).astype(
            np.float32
        )
        index = PartitionedIndex(vectors, num_leaves=8)
        results = index.search(queries, k=1, leaves_to_search=8)
        hits = sum(1 for q, row in enumerate(results) if q in row.tolist())
        assert hits >= 18  # all leaves searched -> essentially exact

    def test_respects_k(self):
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((50, 8)).astype(np.float32)
        index = PartitionedIndex(vectors)
        results = index.search(vectors[:3], k=5)
        assert all(len(row) == 5 for row in results)

    def test_quantized_scoring_runs(self):
        rng = np.random.default_rng(5)
        vectors = rng.standard_normal((80, 20)).astype(np.float32)
        index = PartitionedIndex(vectors, quantize=True)
        results = index.search(vectors[:4], k=3)
        assert all(len(row) == 3 for row in results)

    def test_empty_index(self):
        index = PartitionedIndex(np.zeros((0, 4), dtype=np.float32))
        results = index.search(np.zeros((2, 4), dtype=np.float32), k=1)
        assert all(len(row) == 0 for row in results)

    def test_product_quantizer_approximates_scores(self):
        rng = np.random.default_rng(6)
        vectors = rng.standard_normal((100, 20)).astype(np.float32)
        pq = ProductQuantizer(vectors, n_subspaces=4, n_codes=16)
        query = vectors[0]
        ids = np.arange(100)
        approx = pq.scores(query, ids, "l2")
        # The query's own vector should rank near the top.
        assert int(np.argmax(approx)) == 0


class TestAutoencoder:
    def test_loss_decreases(self):
        rng = np.random.default_rng(7)
        data = rng.standard_normal((200, 30)).astype(np.float32)
        model = Autoencoder(30, hidden_dim=16, seed=0)
        hidden0, output0 = model._forward(data)
        initial = float(np.mean((output0 - data) ** 2))
        final = model.fit(data, epochs=15)
        assert final < initial

    def test_encode_shape(self):
        model = Autoencoder(10, hidden_dim=4)
        codes = model.encode(np.zeros((5, 10), dtype=np.float32))
        assert codes.shape == (5, 4)

    def test_empty_fit(self):
        model = Autoencoder(4, hidden_dim=2)
        assert model.fit(np.zeros((0, 4), dtype=np.float32)) == 0.0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Autoencoder(0, 4)


class TestFwht:
    def test_self_inverse_up_to_scale(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        twice = fwht(fwht(x))
        np.testing.assert_allclose(twice, 8 * x, rtol=1e-4)

    def test_known_transform(self):
        x = np.array([1.0, 0.0, 0.0, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(fwht(x), np.ones(4, dtype=np.float32))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fwht(np.zeros(6, dtype=np.float32))

    def test_orthogonality(self):
        # fwht / sqrt(n) preserves norms.
        rng = np.random.default_rng(9)
        x = rng.standard_normal(16).astype(np.float32)
        y = fwht(x) / np.sqrt(16)
        assert np.linalg.norm(y) == pytest.approx(np.linalg.norm(x), rel=1e-4)


class TestProbeSequence:
    def test_first_probe_is_exact_bucket(self):
        sequence = probe_sequence(np.array([0.5, 0.1, 0.9]), probes=4)
        assert sequence[0] == ()

    def test_orders_by_margin(self):
        sequence = probe_sequence(np.array([0.5, 0.1, 0.9]), probes=3)
        # The cheapest flip is the lowest-margin bit (index 1).
        assert sequence[1] == (1,)

    def test_length_capped(self):
        sequence = probe_sequence(np.array([0.3, 0.2]), probes=10)
        assert len(sequence) <= 10

    def test_single_probe(self):
        assert probe_sequence(np.array([0.3]), probes=1) == [()]


class TestLSHFilters:
    def test_minhash_finds_near_duplicates(self, tiny_dataset):
        lsh = MinHashLSH(bands=32, rows=2, shingle_k=3)
        candidates = lsh.candidates(tiny_dataset.left, tiny_dataset.right)
        assert pair_completeness(candidates, tiny_dataset.groundtruth) >= 2 / 3

    def test_minhash_threshold_property(self):
        strict = MinHashLSH(bands=4, rows=32)
        loose = MinHashLSH(bands=32, rows=4)
        assert strict.approximate_threshold > loose.approximate_threshold

    def test_minhash_stochastic_flag(self):
        assert MinHashLSH().is_stochastic

    def test_minhash_reseed_changes_output(self, small_generated):
        lsh = MinHashLSH(bands=8, rows=16, shingle_k=3)
        lsh.reseed(0)
        first = lsh.candidates(small_generated.left, small_generated.right)
        lsh.reseed(99)
        second = lsh.candidates(small_generated.left, small_generated.right)
        assert first != second  # virtually certain for 128 permutations

    def test_minhash_invalid_params(self):
        with pytest.raises(ValueError):
            MinHashLSH(bands=0)
        with pytest.raises(ValueError):
            MinHashLSH(shingle_k=0)

    def test_hyperplane_finds_duplicates(self, tiny_dataset):
        lsh = HyperplaneLSH(tables=20, hashes=6, probes=40)
        candidates = lsh.candidates(tiny_dataset.left, tiny_dataset.right)
        assert pair_completeness(candidates, tiny_dataset.groundtruth) >= 2 / 3

    def test_hyperplane_more_tables_more_candidates(self, small_generated):
        few = HyperplaneLSH(tables=2, hashes=10, probes=2, seed=1)
        many = HyperplaneLSH(tables=30, hashes=10, probes=30, seed=1)
        a = few.candidates(small_generated.left, small_generated.right)
        b = many.candidates(small_generated.left, small_generated.right)
        assert len(b) >= len(a)

    def test_hyperplane_invalid(self):
        with pytest.raises(ValueError):
            HyperplaneLSH(tables=0)
        with pytest.raises(ValueError):
            HyperplaneLSH(hashes=63)

    def test_crosspolytope_finds_duplicates(self, tiny_dataset):
        lsh = CrossPolytopeLSH(tables=20, hashes=1, probes=40)
        candidates = lsh.candidates(tiny_dataset.left, tiny_dataset.right)
        assert pair_completeness(candidates, tiny_dataset.groundtruth) >= 2 / 3

    def test_crosspolytope_last_dim_truncation_runs(self, tiny_dataset):
        lsh = CrossPolytopeLSH(tables=4, hashes=2, last_cp_dimension=16)
        candidates = lsh.candidates(tiny_dataset.left, tiny_dataset.right)
        assert len(candidates) >= 0

    def test_crosspolytope_invalid(self):
        with pytest.raises(ValueError):
            CrossPolytopeLSH(tables=0)


class TestDenseKNNFilters:
    def test_faiss_finds_duplicates(self, tiny_dataset):
        knn = FaissKNN(k=1)
        candidates = knn.candidates(tiny_dataset.left, tiny_dataset.right)
        assert pair_completeness(candidates, tiny_dataset.groundtruth) >= 2 / 3

    def test_faiss_candidate_count_linear_in_queries(self, tiny_dataset):
        knn = FaissKNN(k=2)
        candidates = knn.candidates(tiny_dataset.left, tiny_dataset.right)
        assert len(candidates) == 2 * len(tiny_dataset.right)

    def test_scann_bf_close_to_faiss(self, small_generated):
        faiss = FaissKNN(k=3).candidates(
            small_generated.left, small_generated.right
        )
        scann = ScannKNN(k=3, index_type="BF").candidates(
            small_generated.left, small_generated.right
        )
        overlap = faiss.intersection_size(scann)
        assert overlap / len(faiss) > 0.8

    def test_scann_ah_runs(self, tiny_dataset):
        scann = ScannKNN(k=1, index_type="AH")
        assert len(scann.candidates(tiny_dataset.left, tiny_dataset.right)) > 0

    def test_scann_invalid_index_type(self):
        with pytest.raises(ValueError):
            ScannKNN(k=1, index_type="XX")

    def test_deepblocker_runs_and_is_stochastic(self, tiny_dataset):
        db = DeepBlocker(k=1, epochs=2)
        assert db.is_stochastic
        candidates = db.candidates(tiny_dataset.left, tiny_dataset.right)
        assert len(candidates) == len(tiny_dataset.right)

    def test_deepblocker_auto_reverse(self, small_generated):
        db = DeepBlocker(k=1, epochs=2, auto_reverse=True)
        db.candidates(small_generated.left, small_generated.right)
        assert db.reverse  # |E1| < |E2|

    def test_deepblocker_phases(self, tiny_dataset):
        db = DeepBlocker(k=1, epochs=2)
        db.candidates(tiny_dataset.left, tiny_dataset.right)
        assert set(db.timer.as_dict()) == {"preprocess", "index", "query"}

    def test_pair_orientation_preserved_under_reverse(self, tiny_dataset):
        knn = FaissKNN(k=1, reverse=True)
        candidates = knn.candidates(tiny_dataset.left, tiny_dataset.right)
        for left, right in candidates:
            assert 0 <= left < len(tiny_dataset.left)
            assert 0 <= right < len(tiny_dataset.right)
