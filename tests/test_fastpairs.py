"""Unit tests for the array-encoded fast evaluation path."""

import numpy as np
import pytest

from repro.core.candidates import CandidateSet
from repro.core.fastpairs import (
    encode_pairs,
    evaluate_keys,
    groundtruth_keys,
    keys_to_candidate_set,
    unique_keys,
)
from repro.core.groundtruth import GroundTruth
from repro.core.metrics import evaluate_candidates


class TestEncoding:
    def test_encode_roundtrip(self):
        lefts = np.array([0, 3, 7])
        rights = np.array([2, 0, 9])
        width = 10
        keys = encode_pairs(lefts, rights, width)
        np.testing.assert_array_equal(keys // width, lefts)
        np.testing.assert_array_equal(keys % width, rights)

    def test_unique_keys_sorted_deduplicated(self):
        keys = unique_keys(np.array([5, 1, 5, 3]))
        np.testing.assert_array_equal(keys, [1, 3, 5])

    def test_groundtruth_keys(self):
        gt = GroundTruth([(1, 2), (0, 0)])
        keys = groundtruth_keys(gt, width=10)
        np.testing.assert_array_equal(keys, [0, 12])

    def test_empty_groundtruth(self):
        assert len(groundtruth_keys(GroundTruth(), 10)) == 0


class TestEvaluateKeys:
    def test_agrees_with_slow_path(self):
        rng = np.random.default_rng(0)
        width = 20
        gt_pairs = [(i, i) for i in range(10)]
        cand_pairs = [
            (int(a), int(b))
            for a, b in zip(rng.integers(0, 15, 60), rng.integers(0, 20, 60))
        ]
        groundtruth = GroundTruth(gt_pairs)
        candidates = CandidateSet(cand_pairs)
        slow = evaluate_candidates(candidates, groundtruth, 15, 20)

        cand_keys = unique_keys(
            np.array([left * width + right for left, right in candidates])
        )
        gt_keys = groundtruth_keys(groundtruth, width)
        fast = evaluate_keys(cand_keys, gt_keys, 15, 20)
        assert fast.pc == pytest.approx(slow.pc)
        assert fast.pq == pytest.approx(slow.pq)
        assert fast.candidates == slow.candidates

    def test_empty_candidates(self):
        gt_keys = np.array([3, 7])
        result = evaluate_keys(np.zeros(0, dtype=np.int64), gt_keys, 5, 5)
        assert result.pc == 0.0
        assert result.pq == 0.0

    def test_empty_groundtruth(self):
        result = evaluate_keys(np.array([1, 2]), np.zeros(0, np.int64), 5, 5)
        assert result.pc == 0.0

    def test_perfect_match(self):
        keys = np.array([0, 11, 22])
        result = evaluate_keys(keys, keys, 3, 10)
        assert result.pc == 1.0
        assert result.pq == 1.0


class TestKeysToCandidateSet:
    def test_roundtrip(self):
        original = CandidateSet([(0, 1), (2, 3), (4, 0)])
        width = 10
        keys = unique_keys(
            np.array([left * width + right for left, right in original])
        )
        restored = keys_to_candidate_set(keys, width)
        assert restored == original
