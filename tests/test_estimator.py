"""Property tests for the cardinality-estimation layer.

The contract under test is the one the pruning tuners rely on: in
``"bound"`` mode ``estimate_candidates`` never undercounts the true
candidate set of any configuration, and ``pc_upper_bound`` never
undercounts the achievable pair completeness.  Violating either could
change a tuner's selected configuration under ``--prune``.
"""

from __future__ import annotations

import math

import pytest

from repro.core import registry
from repro.datasets.generator import DatasetSpec, generate
from repro.datasets.noise import NoiseProfile
from repro.tuning import tune_method
from repro.tuning.estimator import (
    MODES,
    prune_enabled,
    snap_down,
)

SEEDS = (3, 11)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_dataset(request):
    spec = DatasetSpec(
        name=f"est-prop-{request.param}",
        domain="product",
        size1=50,
        size2=60,
        duplicates=30,
        seed=request.param,
        noise1=NoiseProfile(typo_rate=0.1, token_drop_rate=0.1),
        noise2=NoiseProfile(typo_rate=0.15, token_drop_rate=0.1),
    )
    return generate(spec)


def actual_candidates(code, params, dataset):
    filter_ = registry.build_filter(code, params)
    return len(filter_.candidates(dataset.left, dataset.right, None))


def bound_estimator(code, dataset):
    estimator = registry.build_estimator(code, mode="bound")
    estimator.prepare(dataset, None)
    return estimator


class TestSparseBounds:
    def test_epsilon_join_bound_never_undercounts(self, seeded_dataset):
        estimator = bound_estimator("EJ", seeded_dataset)
        for model in ("T1G", "C3GM"):
            for cleaning in (False, True):
                for measure in ("cosine", "jaccard"):
                    for threshold in (0.3, 0.7):
                        params = {
                            "model": model,
                            "cleaning": cleaning,
                            "measure": measure,
                            "threshold": threshold,
                        }
                        actual = actual_candidates(
                            "EJ", params, seeded_dataset
                        )
                        assert estimator.estimate_candidates(params) >= actual

    def test_knn_join_bound_never_undercounts(self, seeded_dataset):
        estimator = bound_estimator("kNNJ", seeded_dataset)
        for k in (1, 3):
            for reverse in (False, True):
                params = {
                    "model": "T1G",
                    "cleaning": True,
                    "measure": "cosine",
                    "k": k,
                    "reverse": reverse,
                }
                actual = actual_candidates("kNNJ", params, seeded_dataset)
                assert estimator.estimate_candidates(params) >= actual

    def test_ej_pc_bound_never_undercounts(self, seeded_dataset):
        estimator = bound_estimator("EJ", seeded_dataset)
        duplicates = len(seeded_dataset.groundtruth)
        for threshold in (0.3, 0.7):
            params = {
                "model": "T1G",
                "cleaning": False,
                "measure": "cosine",
                "threshold": threshold,
            }
            filter_ = registry.build_filter("EJ", params)
            candidates = filter_.candidates(
                seeded_dataset.left, seeded_dataset.right, None
            )
            found = sum(
                1 for pair in seeded_dataset.groundtruth if pair in candidates
            )
            actual_pc = found / duplicates
            assert estimator.pc_upper_bound(params) >= actual_pc - 1e-12


class TestBlockingBounds:
    @pytest.mark.parametrize("code", ["SBW", "QBW"])
    def test_workflow_bound_covers_winner(self, code, seeded_dataset):
        winner = tune_method(
            code, seeded_dataset, profile="fast", prune=False
        )
        if not winner.params:
            pytest.skip("all configurations infeasible on this seed")
        estimator = bound_estimator(code, seeded_dataset)
        actual = actual_candidates(code, winner.params, seeded_dataset)
        assert estimator.estimate_candidates(winner.params) >= actual
        assert estimator.pc_upper_bound(winner.params) >= winner.pc - 1e-12


class TestMinHashBounds:
    def test_bound_covers_repeated_runs(self, seeded_dataset):
        estimator = bound_estimator("MH-LSH", seeded_dataset)
        params = {
            "bands": 64,
            "rows": 4,
            "shingle_k": 3,
            "cleaning": False,
        }
        bound = estimator.estimate_candidates(params)
        filter_ = registry.build_filter("MH-LSH", params)
        for repetition in range(3):
            filter_.reseed(repetition)
            actual = len(
                filter_.candidates(
                    seeded_dataset.left, seeded_dataset.right, None
                )
            )
            assert bound >= actual


class TestDenseEstimators:
    def test_knn_closed_form_is_exact(self, seeded_dataset):
        queries = len(seeded_dataset.right)
        indexed = len(seeded_dataset.left)
        for mode in MODES:
            estimator = registry.build_estimator("FAISS", mode=mode)
            estimator.prepare(seeded_dataset, None)
            assert estimator.estimate_candidates({"k": 5}) == (
                queries * min(5, indexed)
            )

    def test_lsh_bound_is_comparison_space(self, seeded_dataset):
        estimator = registry.build_estimator("HP-LSH", mode="bound")
        estimator.prepare(seeded_dataset, None)
        space = len(seeded_dataset.left) * len(seeded_dataset.right)
        assert estimator.estimate_candidates(
            {"tables": 4, "hashes": 8, "probes": 4}
        ) == space

    def test_estimate_mode_stays_finite(self, seeded_dataset):
        for code in ("EJ", "kNNJ", "MH-LSH", "HP-LSH", "CP-LSH"):
            estimator = registry.build_estimator(code, mode="estimate")
            estimator.prepare(seeded_dataset, None)
            params = {
                "model": "T1G",
                "cleaning": False,
                "measure": "cosine",
                "threshold": 0.5,
                "k": 3,
                "bands": 32,
                "rows": 8,
                "shingle_k": 3,
                "tables": 4,
                "hashes": 8,
                "probes": 4,
                "last_cp_dimension": 512,
            }
            value = estimator.estimate_candidates(params)
            assert math.isfinite(value) and value >= 0.0


class TestRegistrySurface:
    def test_every_spec_with_estimator_roundtrips(self):
        codes = registry.estimator_codes()
        assert "EJ" in codes and "SBW" in codes and "MH-LSH" in codes
        for code in codes:
            for mode in MODES:
                estimator = registry.build_estimator(code, mode=mode)
                assert estimator.describe() == {
                    "code": code,
                    "mode": mode,
                    "estimator": type(estimator).__name__,
                }

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            registry.build_estimator("EJ", mode="exact")

    def test_check_consistency_covers_estimators(self):
        registry.check_consistency()

    def test_unprepared_estimator_raises(self):
        estimator = registry.build_estimator("EJ")
        with pytest.raises(RuntimeError):
            estimator.estimate_candidates(
                {"model": "T1G", "cleaning": False, "threshold": 0.5}
            )


class TestKnobs:
    def test_prune_enabled_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNING_PRUNE", raising=False)
        assert prune_enabled(None) is False
        assert prune_enabled(True) is True
        monkeypatch.setenv("REPRO_TUNING_PRUNE", "yes")
        assert prune_enabled(None) is True
        assert prune_enabled(False) is False
        monkeypatch.setenv("REPRO_TUNING_PRUNE", "off")
        assert prune_enabled(None) is False

    def test_snap_down(self):
        assert snap_down(0.905) == pytest.approx(0.90)
        assert snap_down(1.0) == pytest.approx(1.0)
        assert snap_down(0.004) == pytest.approx(0.01)
