"""Unit tests for the entity model."""

import pytest

from repro.core.profile import EntityCollection, EntityProfile


class TestEntityProfile:
    def test_value_returns_attribute(self):
        profile = EntityProfile("p", {"name": "blue grill"})
        assert profile.value("name") == "blue grill"

    def test_value_missing_attribute_is_empty(self):
        profile = EntityProfile("p", {"name": "blue grill"})
        assert profile.value("city") == ""

    def test_value_strips_whitespace(self):
        profile = EntityProfile("p", {"name": "  blue grill  "})
        assert profile.value("name") == "blue grill"

    def test_has_value_true(self):
        assert EntityProfile("p", {"name": "x"}).has_value("name")

    def test_has_value_false_for_empty_string(self):
        assert not EntityProfile("p", {"name": "   "}).has_value("name")

    def test_has_value_false_for_missing(self):
        assert not EntityProfile("p", {}).has_value("name")

    def test_text_schema_based(self):
        profile = EntityProfile("p", {"name": "grill", "city": "salem"})
        assert profile.text("name") == "grill"

    def test_text_schema_agnostic_concatenates_sorted(self):
        profile = EntityProfile("p", {"name": "grill", "city": "salem"})
        assert profile.text() == "salem grill"

    def test_text_skips_empty_values(self):
        profile = EntityProfile("p", {"name": "grill", "city": ""})
        assert profile.text() == "grill"

    def test_attribute_names_only_nonempty(self):
        profile = EntityProfile("p", {"b": "x", "a": "", "c": "y"})
        assert profile.attribute_names == ("b", "c")


class TestEntityCollection:
    def test_add_assigns_dense_ids(self):
        collection = EntityCollection()
        assert collection.add(EntityProfile("x", {})) == 0
        assert collection.add(EntityProfile("y", {})) == 1

    def test_duplicate_uid_rejected(self):
        collection = EntityCollection([EntityProfile("x", {})])
        with pytest.raises(ValueError, match="duplicate uid"):
            collection.add(EntityProfile("x", {}))

    def test_len_and_getitem(self, left_collection):
        assert len(left_collection) == 4
        assert left_collection[0].uid == "a0"

    def test_index_of(self, left_collection):
        assert left_collection.index_of("a2") == 2

    def test_contains_uid(self, left_collection):
        assert "a1" in left_collection
        assert "zz" not in left_collection

    def test_texts_schema_agnostic(self, left_collection):
        texts = left_collection.texts()
        assert "sonacore" in texts[0]
        assert len(texts) == 4

    def test_texts_schema_based(self, left_collection):
        texts = left_collection.texts("brand")
        assert texts == ["sonacore", "veltron", "quantix", "sonacore"]

    def test_attribute_names_union(self, left_collection):
        assert left_collection.attribute_names == ("brand", "title")

    def test_coverage_full(self, left_collection):
        assert left_collection.coverage("title") == 1.0

    def test_coverage_empty_collection(self):
        assert EntityCollection().coverage("x") == 0.0

    def test_coverage_partial(self):
        collection = EntityCollection(
            [EntityProfile("a", {"x": "1"}), EntityProfile("b", {})]
        )
        assert collection.coverage("x") == 0.5

    def test_distinctiveness(self, left_collection):
        # brands: sonacore, veltron, quantix, sonacore -> 3 distinct of 4.
        assert left_collection.distinctiveness("brand") == pytest.approx(0.75)

    def test_distinctiveness_no_values(self):
        assert EntityCollection().distinctiveness("x") == 0.0

    def test_subset(self, left_collection):
        subset = left_collection.subset([0, 3])
        assert len(subset) == 2
        assert subset[1].uid == "a3"

    def test_iteration_order(self, left_collection):
        uids = [p.uid for p in left_collection]
        assert uids == ["a0", "a1", "a2", "a3"]
