"""Unit tests for Comparison Propagation and Meta-blocking."""

import numpy as np
import pytest

from repro.blocking.blocks import Block, BlockCollection
from repro.blocking.metablocking import (
    PRUNING_ALGORITHMS,
    WEIGHTING_SCHEMES,
    ComparisonPropagation,
    MetaBlocking,
    PairGraph,
    prune_mask,
)


@pytest.fixture()
def blocks():
    """(0,0) co-occurs twice (strong), other pairs once (weak)."""
    return BlockCollection(
        [
            Block("k1", (0,), (0,)),
            Block("k2", (0, 1), (0, 1)),
            Block("k3", (2,), (2,)),
        ]
    )


class TestComparisonPropagation:
    def test_removes_redundant_pairs(self, blocks):
        candidates = ComparisonPropagation().clean(blocks)
        # (0,0) appears in k1 and k2 but is counted once.
        assert len(candidates) == 5

    def test_no_recall_loss(self, blocks):
        candidates = ComparisonPropagation().clean(blocks)
        for pair in [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]:
            assert pair in candidates


class TestPairGraph:
    def test_pair_count(self, blocks):
        graph = PairGraph(blocks)
        assert len(graph) == 5

    def test_common_blocks_counts(self, blocks):
        graph = PairGraph(blocks)
        pairs = {
            (int(l), int(r)): c
            for l, r, c in zip(graph.lefts, graph.rights, graph.common)
        }
        assert pairs[(0, 0)] == 2
        assert pairs[(0, 1)] == 1

    def test_arcs_prefers_smaller_blocks(self, blocks):
        graph = PairGraph(blocks)
        weights = graph.weights("ARCS")
        by_pair = {
            (int(l), int(r)): w
            for l, r, w in zip(graph.lefts, graph.rights, weights)
        }
        # (0,0): 1/1 + 1/4 = 1.25; (2,2): 1/1 = 1.0; (0,1): 1/4.
        assert by_pair[(0, 0)] == pytest.approx(1.25)
        assert by_pair[(2, 2)] == pytest.approx(1.0)
        assert by_pair[(0, 1)] == pytest.approx(0.25)

    def test_cbs_counts(self, blocks):
        graph = PairGraph(blocks)
        weights = graph.weights("CBS")
        assert weights.max() == 2.0

    @pytest.mark.parametrize("scheme", WEIGHTING_SCHEMES)
    def test_all_schemes_produce_finite_nonnegative_weights(self, blocks, scheme):
        graph = PairGraph(blocks)
        weights = graph.weights(scheme)
        assert len(weights) == len(graph)
        assert np.all(np.isfinite(weights))
        assert np.all(weights >= 0.0)

    def test_js_bounded_by_one(self, blocks):
        graph = PairGraph(blocks)
        assert graph.weights("JS").max() <= 1.0

    def test_unknown_scheme(self, blocks):
        with pytest.raises(ValueError):
            PairGraph(blocks).weights("NOPE")

    def test_empty_blocks(self):
        graph = PairGraph(BlockCollection([]))
        assert len(graph) == 0
        assert len(graph.weights("CBS")) == 0

    def test_candidate_set_roundtrip(self, blocks):
        graph = PairGraph(blocks)
        mask = np.ones(len(graph), dtype=bool)
        assert len(graph.candidate_set(mask)) == 5


class TestPruning:
    @pytest.mark.parametrize("algorithm", PRUNING_ALGORITHMS)
    def test_masks_are_boolean_and_sized(self, blocks, algorithm):
        graph = PairGraph(blocks)
        weights = graph.weights("CBS")
        mask = prune_mask(graph, weights, algorithm)
        assert mask.dtype == bool
        assert len(mask) == len(graph)

    @pytest.mark.parametrize("algorithm", PRUNING_ALGORITHMS)
    def test_pruning_keeps_strongest_pair(self, blocks, algorithm):
        # (0,0) has the highest CBS weight; no algorithm should drop it.
        graph = PairGraph(blocks)
        weights = graph.weights("CBS")
        mask = prune_mask(graph, weights, algorithm)
        kept = set(
            zip(graph.lefts[mask].tolist(), graph.rights[mask].tolist())
        )
        assert (0, 0) in kept

    def test_wep_threshold_is_mean(self, blocks):
        graph = PairGraph(blocks)
        weights = graph.weights("CBS")
        mask = prune_mask(graph, weights, "WEP")
        assert set(weights[mask]) == {w for w in weights if w >= weights.mean()}

    def test_rcnp_subset_of_cnp(self, blocks):
        graph = PairGraph(blocks)
        weights = graph.weights("ARCS")
        cnp = prune_mask(graph, weights, "CNP")
        rcnp = prune_mask(graph, weights, "RCNP")
        assert np.all(~rcnp | cnp)  # rcnp implies cnp

    def test_rwnp_subset_of_wnp(self, blocks):
        graph = PairGraph(blocks)
        weights = graph.weights("ARCS")
        wnp = prune_mask(graph, weights, "WNP")
        rwnp = prune_mask(graph, weights, "RWNP")
        assert np.all(~rwnp | wnp)

    def test_unknown_algorithm(self, blocks):
        graph = PairGraph(blocks)
        with pytest.raises(ValueError):
            prune_mask(graph, graph.weights("CBS"), "NOPE")


class TestMetaBlocking:
    def test_validates_names(self):
        with pytest.raises(ValueError):
            MetaBlocking(scheme="BAD")
        with pytest.raises(ValueError):
            MetaBlocking(pruning="BAD")

    def test_clean_returns_subset_of_distinct_pairs(self, blocks):
        full = blocks.distinct_pairs().as_frozenset()
        for scheme in ("CBS", "ARCS"):
            for pruning in ("WEP", "BLAST", "CNP"):
                cleaned = MetaBlocking(scheme, pruning).clean(blocks)
                assert cleaned.as_frozenset() <= full

    def test_prunes_superfluous_pairs(self, blocks):
        cleaned = MetaBlocking("CBS", "RCNP").clean(blocks)
        assert len(cleaned) < 5  # some weak pairs removed

    def test_empty_blocks(self):
        assert len(MetaBlocking().clean(BlockCollection([]))) == 0

    def test_describe(self):
        assert "ECBS" in MetaBlocking("ECBS", "WNP").describe()


class TestDegenerateGraphs:
    """Divide-by-zero / NaN guards on inputs the cleaning pipeline never
    produces but direct construction can (satellite of the SMB PR)."""

    def _assert_all_schemes_finite(self, graph):
        with np.errstate(all="raise"):
            for scheme in WEIGHTING_SCHEMES:
                weights = graph.weights(scheme)
                assert len(weights) == len(graph)
                assert np.all(np.isfinite(weights)), scheme

    def test_zero_comparison_block_is_skipped(self):
        collection = BlockCollection([Block("ok", (0,), (0,))])
        # Bypass the constructor filter: a block with an empty side.
        collection.blocks.append(Block("lonely", (1,), ()))
        graph = PairGraph(collection)  # must not raise ZeroDivisionError
        assert len(graph) == 1
        self._assert_all_schemes_finite(graph)

    def test_single_pair_graph_finite_everywhere(self):
        graph = PairGraph(BlockCollection([Block("k", (3,), (5,))]))
        assert len(graph) == 1
        self._assert_all_schemes_finite(graph)

    def test_duplicate_free_disjoint_singletons(self):
        # Single-entity 1x1 blocks, no entity shared across blocks: the
        # EJS/X2 denominators all hit their minimum values.
        graph = PairGraph(
            BlockCollection(
                [Block(f"k{i}", (i,), (i,)) for i in range(4)]
            )
        )
        assert len(graph) == 4
        self._assert_all_schemes_finite(graph)

    def test_pair_in_every_block(self):
        # JS union == common: the maximal-overlap corner of the formula.
        graph = PairGraph(
            BlockCollection(
                [Block(f"k{i}", (0,), (0,)) for i in range(5)]
            )
        )
        self._assert_all_schemes_finite(graph)
        assert graph.weights("JS")[0] == pytest.approx(1.0)


class TestPruneMaskEdgeCases:
    def test_empty_graph_all_algorithms(self):
        graph = PairGraph(BlockCollection([]))
        for algorithm in PRUNING_ALGORITHMS:
            mask = prune_mask(
                graph, graph.weights("CBS"), algorithm
            )
            assert mask.dtype == bool and len(mask) == 0

    def test_all_identical_weights_keep_everything_weight_based(self):
        # Every weight equals the mean and every group maximum, so the
        # weight-threshold algorithms must retain every pair.
        graph = PairGraph(
            BlockCollection(
                [Block(f"k{i}", (i,), (i,)) for i in range(4)]
            )
        )
        weights = graph.weights("CBS")
        assert len(set(weights.tolist())) == 1
        for algorithm in ("WEP", "WNP", "RWNP", "BLAST"):
            assert np.all(prune_mask(graph, weights, algorithm)), algorithm

    def test_all_identical_weights_cardinality_bounds(self):
        graph = PairGraph(
            BlockCollection(
                [Block(f"k{i}", (i,), (i,)) for i in range(4)]
            )
        )
        weights = graph.weights("CBS")
        for algorithm in ("CEP", "CNP", "RCNP"):
            mask = prune_mask(graph, weights, algorithm)
            assert mask.dtype == bool
            assert 0 < mask.sum() <= len(graph), algorithm

    def test_single_entity_blocks_per_node_algorithms(self):
        # One entity per side in each block: per-node groups have size
        # one, so every per-node algorithm keeps its only member.
        graph = PairGraph(
            BlockCollection(
                [Block(f"k{i}", (i,), (i,)) for i in range(3)]
            )
        )
        weights = graph.weights("ARCS")
        for algorithm in ("CNP", "RCNP", "WNP", "RWNP", "BLAST"):
            assert np.all(prune_mask(graph, weights, algorithm)), algorithm
