"""Property-based tests for the dense substrate (hypothesis + numpy)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dense.crosspolytope import fwht
from repro.dense.flat_index import FlatIndex
from repro.dense.hyperplane import probe_sequence
from repro.dense.partitioned import kmeans

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def matrix_strategy(rows_min=2, rows_max=12, cols=4):
    return arrays(
        dtype=np.float32,
        shape=st.tuples(st.integers(rows_min, rows_max), st.just(cols)),
        elements=finite_floats,
    )


@given(matrix_strategy())
@settings(max_examples=40, deadline=None)
def test_flat_index_top1_matches_brute_force(vectors):
    index = FlatIndex(vectors, metric="l2")
    ids, __ = index.search(vectors, k=1)
    for row, query in zip(ids, vectors):
        distances = np.linalg.norm(vectors - query, axis=1)
        best = distances[int(row[0])]
        # Compare squared distances: the index computes |a|^2+|b|^2-2ab in
        # float32, whose cancellation error is absolute in the *squared*
        # domain — an absolute tolerance on the sqrt flakes near zero.
        scale = 1.0 + float((vectors ** 2).sum(axis=1).max())
        assert best ** 2 <= distances.min() ** 2 + 1e-3 * scale


@given(matrix_strategy(), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_flat_index_results_sorted_best_first(vectors, k):
    index = FlatIndex(vectors, metric="l2")
    __, scores = index.search(vectors[:3], k=k)
    for row in scores:
        assert all(row[i] >= row[i + 1] - 1e-5 for i in range(len(row) - 1))


@given(matrix_strategy(rows_min=3), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_kmeans_centroids_within_data_hull_bounds(vectors, clusters):
    centroids = kmeans(vectors, clusters, seed=0)
    lower = vectors.min() - 1e-5
    upper = vectors.max() + 1e-5
    assert np.all(centroids >= lower)
    assert np.all(centroids <= upper)


@given(
    arrays(
        dtype=np.float32,
        shape=st.sampled_from([(4,), (8,), (16,)]),
        elements=finite_floats,
    )
)
@settings(max_examples=50, deadline=None)
def test_fwht_involution_and_norm(vector):
    n = vector.shape[-1]
    reconstructed = fwht(fwht(vector)) / n
    np.testing.assert_allclose(reconstructed, vector, atol=1e-3)
    # Parseval: ||Hx|| = sqrt(n) ||x||.
    assert np.linalg.norm(fwht(vector)) == np.float32(
        np.linalg.norm(fwht(vector))
    )


@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(1, 8).map(lambda n: (n,)),
        elements=st.floats(0.0, 5.0),
    ),
    st.integers(1, 10),
)
@settings(max_examples=50, deadline=None)
def test_probe_sequence_properties(margins, probes):
    sequence = probe_sequence(margins, probes)
    # Bounded length, unique probes, starts at the exact bucket.
    assert 1 <= len(sequence) <= probes
    assert sequence[0] == ()
    assert len(set(sequence)) == len(sequence)
    # Total margins are non-decreasing through the sequence.
    totals = [sum(margins[list(flips)]) if flips else 0.0 for flips in sequence]
    assert all(totals[i] <= totals[i + 1] + 1e-9 for i in range(len(totals) - 1))
