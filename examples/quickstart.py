"""Quickstart: filter a Clean-Clean ER dataset three different ways.

Loads the d2 benchmark dataset (an Abt-Buy analogue: two product catalogs
with full overlap), runs one filter from each family — a blocking
workflow, a sparse NN join and a dense NN search — and compares their
recall (PC), precision (PQ) and run-time.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.blocking import (
    BlockingWorkflow,
    MetaBlocking,
    StandardBlocking,
)
from repro.core.metrics import evaluate_candidates
from repro.datasets import load_dataset
from repro.dense import FaissKNN
from repro.sparse import KNNJoin


def main() -> None:
    dataset = load_dataset("d2")
    print(
        f"Dataset {dataset.name}: |E1|={len(dataset.left)}, "
        f"|E2|={len(dataset.right)}, duplicates={len(dataset.groundtruth)}"
    )

    filters = [
        # A blocking workflow: token blocks, then Meta-blocking pruning.
        BlockingWorkflow(
            StandardBlocking(), cleaner=MetaBlocking("ARCS", "RCNP")
        ),
        # A sparse NN method: 3-gram cosine kNN join.
        KNNJoin(k=2, model="C3G", measure="cosine"),
        # A dense NN method: embeddings + exact kNN search.
        FaissKNN(k=2),
    ]

    print(f"\n{'filter':55s} {'PC':>6s} {'PQ':>7s} {'|C|':>7s} {'RT':>8s}")
    for filter_ in filters:
        start = time.perf_counter()
        candidates = filter_.candidates(dataset.left, dataset.right)
        elapsed = time.perf_counter() - start
        evaluation = evaluate_candidates(
            candidates,
            dataset.groundtruth,
            len(dataset.left),
            len(dataset.right),
        )
        print(
            f"{filter_.describe():55s} {evaluation.pc:6.3f} "
            f"{evaluation.pq:7.4f} {evaluation.candidates:7d} "
            f"{elapsed * 1000:6.0f}ms"
        )

    print(
        "\nEvery filter receives the same input and emits the same output\n"
        "(candidate pairs), so downstream matching is interchangeable."
    )


if __name__ == "__main__":
    main()
