"""Bring your own data: CSV round-trip and filtering a custom dataset.

Shows the complete workflow a downstream user follows with their own
records: build entity profiles, persist them in the benchmark's CSV
layout, load them back, pick an attribute, filter, and evaluate against a
known groundtruth.

Run:  python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import EntityCollection, EntityProfile, GroundTruth
from repro.core.metrics import evaluate_candidates
from repro.datasets.io import (
    read_collection,
    read_groundtruth,
    write_collection,
    write_groundtruth,
)
from repro.sparse import EpsilonJoin


def build_catalogs():
    """Two tiny, hand-written product catalogs with two true matches."""
    store_a = EntityCollection(
        [
            EntityProfile("a1", {"title": "acme turbo kettle 2000", "price": "39.90"}),
            EntityProfile("a2", {"title": "bolt wireless mouse", "price": "19.00"}),
            EntityProfile("a3", {"title": "crane desk lamp led", "price": "24.50"}),
        ],
        name="store-a",
    )
    store_b = EntityCollection(
        [
            EntityProfile("b1", {"title": "acme turbo kettle 2000 series"}),
            EntityProfile("b2", {"title": "bolt wirless mouse"}),  # typo!
            EntityProfile("b3", {"title": "delta espresso machine"}),
        ],
        name="store-b",
    )
    groundtruth = GroundTruth.from_uids(
        [("a1", "b1"), ("a2", "b2")], store_a, store_b
    )
    return store_a, store_b, groundtruth


def main() -> None:
    store_a, store_b, groundtruth = build_catalogs()

    with tempfile.TemporaryDirectory() as workdir:
        base = Path(workdir)
        write_collection(store_a, base / "store_a.csv")
        write_collection(store_b, base / "store_b.csv")
        write_groundtruth(groundtruth, store_a, store_b, base / "matches.csv")
        print(f"Wrote CSVs to {base}\n")

        left = read_collection(base / "store_a.csv")
        right = read_collection(base / "store_b.csv")
        gt = read_groundtruth(base / "matches.csv", left, right)

        join = EpsilonJoin(threshold=0.4, model="C3G", measure="jaccard")
        candidates = join.candidates(left, right, attribute="title")
        evaluation = evaluate_candidates(candidates, gt, len(left), len(right))

        print("Candidates found:")
        for left_id, right_id in sorted(candidates):
            print(f"  {left[left_id].value('title')!r:40s} <-> "
                  f"{right[right_id].value('title')!r}")
        print(
            f"\nPC={evaluation.pc:.2f} PQ={evaluation.pq:.2f} "
            f"({evaluation.duplicates_found}/{len(gt)} duplicates, "
            f"{evaluation.candidates} candidates)"
        )
        print(
            "\nThe character-3-gram join survives the 'wirless' typo that"
            "\nwhole-token matching would miss."
        )


if __name__ == "__main__":
    main()
