"""Schema-based vs schema-agnostic linkage of bibliographic records.

Scenario: link a curated bibliography (DBLP-like) against a noisy,
much larger scraped corpus (Scholar-like) — the d9 dataset.  We compare
the two schema settings the paper studies:

* schema-based — match only on the most informative attribute (title),
  selected automatically by coverage x distinctiveness;
* schema-agnostic — match on all attribute values concatenated.

Run:  python examples/bibliographic_linkage.py
"""

from __future__ import annotations

import time

from repro.core.metrics import evaluate_candidates
from repro.datasets import attribute_stats, load_dataset, select_best_attribute
from repro.datasets.stats import character_length, vocabulary_size
from repro.sparse import KNNJoin


def main() -> None:
    dataset = load_dataset("d9")
    print(
        f"Dataset {dataset.name} ({dataset.spec.description}): "
        f"|E1|={len(dataset.left)}, |E2|={len(dataset.right)}\n"
    )

    print("Attribute statistics (coverage x distinctiveness):")
    for stats in attribute_stats(dataset):
        print(
            f"  {stats.attribute:10s} coverage={stats.coverage:.2f} "
            f"distinctiveness={stats.distinctiveness:.2f} "
            f"score={stats.score:.2f}"
        )
    best = select_best_attribute(dataset)
    print(f"\nSelected best attribute: {best!r}\n")

    print("Text volume per setting:")
    for label, attribute in (("schema-agnostic", None), ("schema-based", best)):
        print(
            f"  {label:16s} vocabulary={vocabulary_size(dataset, attribute):6d} "
            f"characters={character_length(dataset, attribute):8d}"
        )

    print("\nkNN-Join (k=2, C3G, cosine) under both settings:")
    join = KNNJoin(k=2, model="C3G", measure="cosine", reverse=True)
    for label, attribute in (("schema-agnostic", None), ("schema-based", best)):
        start = time.perf_counter()
        candidates = join.candidates(dataset.left, dataset.right, attribute)
        elapsed = time.perf_counter() - start
        evaluation = evaluate_candidates(
            candidates,
            dataset.groundtruth,
            len(dataset.left),
            len(dataset.right),
        )
        print(
            f"  {label:16s} PC={evaluation.pc:.3f} PQ={evaluation.pq:.4f} "
            f"|C|={evaluation.candidates:6d} RT={elapsed * 1000:6.0f}ms"
        )

    print(
        "\nThe schema-based setting is faster (it processes a third of the"
        "\ntext) but is only viable because the title attribute has high"
        "\ngroundtruth coverage here; on datasets with misplaced values"
        "\n(d5-d7, d10) only the schema-agnostic setting reaches high recall."
    )


if __name__ == "__main__":
    main()
