"""Dirty ER: deduplicating a single collection with duplicate clusters.

The benchmark evaluates Clean-Clean ER, but every filter transfers to
deduplication through the self-join adapter (Section III's second task):
the collection plays both roles, self-pairs are dropped, and each
unordered pair is counted once.

Run:  python examples/deduplication.py
"""

from __future__ import annotations

from repro.blocking import BlockingWorkflow, MetaBlocking, StandardBlocking
from repro.datasets.noise import NoiseProfile
from repro.dirty import (
    DirtyDatasetSpec,
    dirty_candidates,
    evaluate_dirty,
    generate_dirty,
)
from repro.sparse import KNNJoin


def main() -> None:
    spec = DirtyDatasetSpec(
        name="crm-contacts",
        domain="restaurant",
        size=300,
        cluster_sizes=(3, 3, 2, 2, 2, 2, 2, 2),
        seed=33,
        noise=NoiseProfile(
            typo_rate=0.12, token_drop_rate=0.1, abbreviation_rate=0.05
        ),
        misplace_target="address",
    )
    dataset = generate_dirty(spec)
    print(
        f"Dirty collection: {len(dataset.collection)} records, "
        f"{len(dataset.clusters)} duplicate clusters, "
        f"{len(dataset.groundtruth)} duplicate pairs\n"
    )

    filters = {
        "blocking + meta-blocking": BlockingWorkflow(
            StandardBlocking(), cleaner=MetaBlocking("ARCS", "CNP")
        ),
        # k=3: in a self-join every record's best neighbour is itself,
        # so the cardinality budget needs one extra slot.
        "kNN-Join (k=3)": KNNJoin(k=3, model="C3G"),
    }
    for label, filter_ in filters.items():
        candidates = dirty_candidates(filter_, dataset.collection)
        evaluation = evaluate_dirty(
            candidates, dataset.groundtruth, len(dataset.collection)
        )
        print(
            f"{label:28s} PC={evaluation.pc:.3f} PQ={evaluation.pq:.4f} "
            f"|C|={evaluation.candidates}"
        )

    print("\nDetected clusters (blocking filter, exact duplicates only):")
    workflow = BlockingWorkflow(
        StandardBlocking(), cleaner=MetaBlocking("ARCS", "RCNP")
    )
    candidates = dirty_candidates(workflow, dataset.collection)
    hits = [p for p in sorted(candidates) if p in dataset.groundtruth]
    for left, right in hits[:5]:
        print(
            f"  {dataset.collection[left].text()[:46]!r} ~ "
            f"{dataset.collection[right].text()[:46]!r}"
        )


if __name__ == "__main__":
    main()
