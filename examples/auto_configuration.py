"""Label-free a-priori configuration — the paper's proposed future work.

Conclusion 1 of the paper asks for "an automatic, data-driven approach
that requires no labelled set" to configure filters a-priori.  This
example runs our implementation (`repro.tuning.auto`) against the static
DkNN defaults and against full (groundtruth-using) Problem-1 tuning, on
three datasets.

Run:  python examples/auto_configuration.py
"""

from __future__ import annotations

from repro.core.metrics import evaluate_candidates
from repro.datasets import load_dataset
from repro.tuning import evaluate_baseline, tune_method
from repro.tuning.auto import AutoKNNConfigurator


def main() -> None:
    print(
        f"{'dataset':8s} {'configurator':22s} {'PC':>6s} {'PQ':>8s} "
        f"{'k':>3s}  model"
    )
    for name in ("d1", "d3", "d4"):
        dataset = load_dataset(name)

        join = AutoKNNConfigurator().configure_for(dataset)
        candidates = join.candidates(dataset.left, dataset.right)
        auto = evaluate_candidates(
            candidates, dataset.groundtruth,
            len(dataset.left), len(dataset.right),
        )
        print(
            f"{name:8s} {'auto (no labels)':22s} {auto.pc:6.3f} "
            f"{auto.pq:8.4f} {join.k:3d}  {join.model.code}"
        )

        baseline = evaluate_baseline("DkNN", dataset, repetitions=1)
        print(
            f"{'':8s} {'DkNN (static default)':22s} {baseline.pc:6.3f} "
            f"{baseline.pq:8.4f} {5:3d}  C5GM"
        )

        tuned = tune_method("kNNJ", dataset)
        print(
            f"{'':8s} {'tuned (needs labels)':22s} {tuned.pc:6.3f} "
            f"{tuned.pq:8.4f} {tuned.params['k']:3d}  "
            f"{tuned.params['model']}\n"
        )

    print(
        "The label-free configurator closes much of the gap between the"
        "\nstatic defaults and full groundtruth-driven tuning: it reads the"
        "\ndataset's token statistics to pick the representation and the"
        "\nsimilarity-gap structure to pick k."
    )


if __name__ == "__main__":
    main()
