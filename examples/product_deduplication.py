"""Product catalog linkage with Problem-1 configuration optimization.

Scenario: two e-commerce feeds describe overlapping product catalogs with
typos, dropped tokens and marketing suffixes (the d3 dataset, an
Amazon-GoogleBase analogue — the hardest product dataset of the paper).
We fine-tune three filter families to the paper's objective — maximize
precision subject to recall >= 0.9 — and inspect the winning
configurations.

Run:  python examples/product_deduplication.py
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.tuning import evaluate_baseline, tune_method


def main() -> None:
    dataset = load_dataset("d3")
    print(
        f"Dataset {dataset.name} ({dataset.spec.description}): "
        f"|E1|={len(dataset.left)}, |E2|={len(dataset.right)}, "
        f"duplicates={len(dataset.groundtruth)}\n"
    )

    print("Fine-tuning with recall target PC >= 0.9 ...\n")
    for method in ("SBW", "kNNJ", "FAISS"):
        result = tune_method(method, dataset)
        print(
            f"{method:6s} PC={result.pc:.3f} PQ={result.pq:.4f} "
            f"|C|={result.candidates:6d} RT={result.runtime * 1000:6.0f}ms "
            f"({result.configurations_tried} configs tried)"
        )
        print(f"       best config: {result.describe_params()}\n")

    print("Baselines with default parameters (no tuning):\n")
    for baseline in ("PBW", "DkNN"):
        result = evaluate_baseline(baseline, dataset, repetitions=1)
        marker = "" if result.feasible else "  (missed the recall target!)"
        print(
            f"{baseline:6s} PC={result.pc:.3f} PQ={result.pq:.4f} "
            f"|C|={result.candidates:6d}{marker}"
        )

    print(
        "\nThe tuned syntactic methods (SBW, kNNJ) dominate the embedding-"
        "\nbased FAISS on this noisy product data, and every tuned method"
        "\nbeats its default-parameter baseline by a wide margin — the"
        "\npaper's Conclusions 1 and 4."
    )


if __name__ == "__main__":
    main()
