"""Mini Table VII: fine-tune every filter family on one dataset.

Runs the full Problem-1 configuration optimization for one representative
method per family plus every baseline on the d1 dataset, printing a small
version of the paper's headline table.

Run:  python examples/compare_filters.py [dataset]
"""

from __future__ import annotations

import sys

from repro.datasets import DATASET_NAMES, load_dataset
from repro.tuning import BASELINES, evaluate_baseline, tune_method
from repro.tuning.dense import EmbeddingCache

METHODS = ("SBW", "QBW", "EJ", "kNNJ", "MH-LSH", "FAISS", "DB")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "d1"
    if name not in DATASET_NAMES:
        raise SystemExit(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    dataset = load_dataset(name)
    print(
        f"Dataset {dataset.name}: |E1|={len(dataset.left)}, "
        f"|E2|={len(dataset.right)}, duplicates={len(dataset.groundtruth)}\n"
    )
    print(f"{'method':8s} {'PC':>6s} {'PQ':>8s} {'|C|':>8s} {'RT':>8s}  best configuration")
    cache = EmbeddingCache()

    for method in METHODS:
        result = tune_method(method, dataset, cache=cache)
        marker = " " if result.feasible else "*"
        print(
            f"{method:8s} {result.pc:5.3f}{marker} {result.pq:8.4f} "
            f"{result.candidates:8d} {result.runtime * 1000:6.0f}ms  "
            f"{result.describe_params()}"
        )

    print("\nBaselines (default parameters):")
    for baseline in BASELINES:
        result = evaluate_baseline(baseline, dataset, repetitions=2)
        marker = " " if result.feasible else "*"
        print(
            f"{result.method:8s} {result.pc:5.3f}{marker} {result.pq:8.4f} "
            f"{result.candidates:8d} {result.runtime * 1000:6.0f}ms"
        )
    print("\n* marks configurations that missed the recall target (PC >= 0.9).")


if __name__ == "__main__":
    main()
