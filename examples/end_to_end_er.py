"""End-to-end entity resolution: filtering -> matching -> clustering.

Demonstrates the paper's framing premise: filtering recall caps the
recall of the whole ER pipeline, because the verification step only ever
sees the candidate pairs.  We run the same matcher behind two filters —
one tuned to the paper's PC >= 0.9 target and one over-aggressive — and
watch the end-to-end recall collapse with the second.

Run:  python examples/end_to_end_er.py
"""

from __future__ import annotations

from repro.core.metrics import pair_completeness
from repro.datasets import load_dataset
from repro.matching import ERPipeline, SimilarityMatcher
from repro.sparse import EpsilonJoin, KNNJoin


def main() -> None:
    dataset = load_dataset("d4")
    print(
        f"Dataset {dataset.name} ({dataset.spec.description}): "
        f"{len(dataset.groundtruth)} true matches\n"
    )

    matcher = SimilarityMatcher(threshold=0.35, model="C3G", measure="cosine")
    filters = {
        "good filter (kNN-Join, k=2)": KNNJoin(k=2, model="C3G"),
        "over-aggressive filter (e-Join, t=0.9)": EpsilonJoin(0.9, model="C3G"),
    }

    for label, filter_ in filters.items():
        candidates = filter_.candidates(dataset.left, dataset.right)
        filtering_pc = pair_completeness(candidates, dataset.groundtruth)
        pipeline = ERPipeline(filter_, matcher)
        result = pipeline.run(dataset.left, dataset.right)
        print(f"{label}")
        print(
            f"  filtering : PC={filtering_pc:.3f} |C|={len(candidates)}"
        )
        print(
            f"  end-to-end: recall={result.recall(dataset.groundtruth):.3f} "
            f"precision={result.precision(dataset.groundtruth):.3f} "
            f"F1={result.f1(dataset.groundtruth):.3f}"
        )
        assert result.recall(dataset.groundtruth) <= filtering_pc + 1e-9
        print(
            "  (end-to-end recall <= filtering PC, as the paper's "
            "Problem 1 assumes)\n"
        )


if __name__ == "__main__":
    main()
